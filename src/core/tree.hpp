// Hierarchical tree of source clusters (§2.4): the root is the minimal
// bounding box of all sources; clusters divide at the midpoint of their
// bounding box. Division is aspect-ratio aware (§3.1): a dimension is split
// only if its extent exceeds longest/sqrt(2), so a cluster may get 2, 4, or
// 8 children instead of always 8. Recursion stops at `max_leaf` particles.
// Every cluster's box is the *minimal* bounding box of its own particles,
// which guarantees some particle coordinates coincide with Chebyshev
// endpoint coordinates (the removable-singularity case of §2.3).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "core/particles.hpp"
#include "util/box.hpp"

namespace bltc {

/// Tree construction parameters.
struct TreeParams {
  std::size_t max_leaf = 2000;  ///< N_L: recursion stops at this many particles
  /// Maximum tolerated aspect ratio when deciding which dimensions to split;
  /// the paper uses sqrt(2).
  double max_aspect = 1.4142135623730951;
  /// Fattened-AABB slack (collision-detection-tree style): every node's box
  /// is padded by 0.5 * slack * longest(tight box) per dimension, and the
  /// MAC geometry (center, radius) is taken from the fat box. Particles may
  /// then move anywhere inside their leaf's fat box without invalidating
  /// the interaction lists or the interpolation grids — the basis of the
  /// incremental update_positions path. 0 keeps exact minimal boxes.
  double slack = 0.0;
};

/// One cluster. Children are indices into ClusterTree::nodes();
/// `begin..end` is the cluster's contiguous particle range in tree order.
struct ClusterNode {
  Box3 box;                        ///< bounding box (fattened when slack > 0)
  std::array<double, 3> center{};  ///< box center (interpolation grid center)
  double radius = 0.0;             ///< half-diagonal, the MAC's r_C
  std::size_t begin = 0;
  std::size_t end = 0;
  int parent = -1;
  int level = 0;
  std::array<int, 8> children{-1, -1, -1, -1, -1, -1, -1, -1};
  int num_children = 0;
  /// Minimal bounding box of the particles at build time (equals `box` when
  /// slack == 0). Fattening pads this; the split planes below refer to it.
  Box3 tight_box;
  /// Geometry of the midpoint split that produced this node's children
  /// (meaningful for internal nodes only): the tight-box center used as the
  /// split plane and the 3-bit mask of dimensions actually split.
  std::array<double, 3> split_mid{};
  unsigned split_dims = 0;
  /// Octant code -> child node index (-1 where no child exists). Lets
  /// `locate_leaf` descend without re-deriving the build-time bucketing.
  std::array<int, 8> child_by_code{-1, -1, -1, -1, -1, -1, -1, -1};
  /// True when this node was bisected by index (coincident particles or a
  /// zero-extent box): the children are not geometric octants, so point
  /// location cannot descend through it.
  bool degenerate_split = false;

  bool is_leaf() const { return num_children == 0; }
  std::size_t count() const { return end - begin; }
};

/// Source cluster tree. Building reorders `particles` in place so that every
/// cluster owns a contiguous range; the particles object keeps the
/// permutation back to caller order.
class ClusterTree {
 public:
  /// Build over all particles. Root is node 0. Empty input produces a tree
  /// with a single empty leaf.
  static ClusterTree build(OrderedParticles& particles,
                           const TreeParams& params);

  const std::vector<ClusterNode>& nodes() const { return nodes_; }
  const ClusterNode& node(int i) const {
    return nodes_[static_cast<std::size_t>(i)];
  }
  int root() const { return 0; }
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_leaves() const { return num_leaves_; }
  int max_level() const { return max_level_; }

  /// Indices of all leaf nodes, in tree order.
  std::vector<int> leaf_indices() const;

  /// Descend the build-time split planes to the leaf whose cell contains
  /// (x, y, z). Returns -1 when the descent crosses a degenerate
  /// (index-bisected) split or reaches an octant that had no particles at
  /// build time — callers must then fall back to a full rebuild. The
  /// returned leaf's cell contains the point, but its (fat) bounding box
  /// need not; callers check containment separately.
  int locate_leaf(double x, double y, double z) const;

  /// Incremental re-bucket support: reassign every leaf's particle count
  /// (`counts[node index]`; non-leaf entries ignored) while keeping the
  /// topology and all box geometry. Leaf ranges are laid out contiguously
  /// in their existing range order and internal ranges recomputed
  /// bottom-up. The total count must equal the current particle count.
  void reassign_leaf_counts(const std::vector<std::size_t>& counts);

  /// Reassemble a tree from an explicit node array (used by the distributed
  /// layer to materialize a remote rank's tree received over RMA). Leaf
  /// count and max level are recomputed.
  static ClusterTree from_nodes(std::vector<ClusterNode> nodes);

  /// Process-wide count of `build` calls (not from_nodes). Mirrors
  /// ClusterMoments::build_count: tests use deltas of this counter to assert
  /// structural claims — e.g. that a plan-cache hit replans nothing.
  static std::size_t build_count();

 private:
  std::vector<ClusterNode> nodes_;
  std::size_t num_leaves_ = 0;
  int max_level_ = 0;
};

}  // namespace bltc
