// Hierarchical tree of source clusters (§2.4): the root is the minimal
// bounding box of all sources; clusters divide at the midpoint of their
// bounding box. Division is aspect-ratio aware (§3.1): a dimension is split
// only if its extent exceeds longest/sqrt(2), so a cluster may get 2, 4, or
// 8 children instead of always 8. Recursion stops at `max_leaf` particles.
// Every cluster's box is the *minimal* bounding box of its own particles,
// which guarantees some particle coordinates coincide with Chebyshev
// endpoint coordinates (the removable-singularity case of §2.3).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "core/particles.hpp"
#include "util/box.hpp"

namespace bltc {

/// Tree construction parameters.
struct TreeParams {
  std::size_t max_leaf = 2000;  ///< N_L: recursion stops at this many particles
  /// Maximum tolerated aspect ratio when deciding which dimensions to split;
  /// the paper uses sqrt(2).
  double max_aspect = 1.4142135623730951;
};

/// One cluster. Children are indices into ClusterTree::nodes();
/// `begin..end` is the cluster's contiguous particle range in tree order.
struct ClusterNode {
  Box3 box;                        ///< minimal bounding box of the particles
  std::array<double, 3> center{};  ///< box center (interpolation grid center)
  double radius = 0.0;             ///< half-diagonal, the MAC's r_C
  std::size_t begin = 0;
  std::size_t end = 0;
  int parent = -1;
  int level = 0;
  std::array<int, 8> children{-1, -1, -1, -1, -1, -1, -1, -1};
  int num_children = 0;

  bool is_leaf() const { return num_children == 0; }
  std::size_t count() const { return end - begin; }
};

/// Source cluster tree. Building reorders `particles` in place so that every
/// cluster owns a contiguous range; the particles object keeps the
/// permutation back to caller order.
class ClusterTree {
 public:
  /// Build over all particles. Root is node 0. Empty input produces a tree
  /// with a single empty leaf.
  static ClusterTree build(OrderedParticles& particles,
                           const TreeParams& params);

  const std::vector<ClusterNode>& nodes() const { return nodes_; }
  const ClusterNode& node(int i) const {
    return nodes_[static_cast<std::size_t>(i)];
  }
  int root() const { return 0; }
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_leaves() const { return num_leaves_; }
  int max_level() const { return max_level_; }

  /// Indices of all leaf nodes, in tree order.
  std::vector<int> leaf_indices() const;

  /// Reassemble a tree from an explicit node array (used by the distributed
  /// layer to materialize a remote rank's tree received over RMA). Leaf
  /// count and max level are recomputed.
  static ClusterTree from_nodes(std::vector<ClusterNode> nodes);

  /// Process-wide count of `build` calls (not from_nodes). Mirrors
  /// ClusterMoments::build_count: tests use deltas of this counter to assert
  /// structural claims — e.g. that a plan-cache hit replans nothing.
  static std::size_t build_count();

 private:
  std::vector<ClusterNode> nodes_;
  std::size_t num_leaves_ = 0;
  int max_level_ = 0;
};

}  // namespace bltc
