#include "core/precision.hpp"

#include <algorithm>

namespace bltc {

const char* precision_policy_name(PrecisionPolicy policy) {
  switch (policy) {
    case PrecisionPolicy::kFp64:
      return "fp64";
    case PrecisionPolicy::kMixed:
      return "mixed";
    case PrecisionPolicy::kFp32Far:
      return "fp32far";
  }
  return "unknown";
}

namespace {

void mirror(std::span<const double> src, std::vector<float>& dst) {
  dst.resize(src.size());
  std::transform(src.begin(), src.end(), dst.begin(),
                 [](double v) { return static_cast<float>(v); });
}

}  // namespace

void Fp32Shadow::clear() {
  x.clear();
  y.clear();
  z.clear();
  q.clear();
  qhat.clear();
  grids.clear();
}

Fp32Shadow Fp32Shadow::build(const OrderedParticles& particles,
                             std::span<const ClusterMoments> levels) {
  Fp32Shadow shadow;
  mirror(particles.x, shadow.x);
  mirror(particles.y, shadow.y);
  mirror(particles.z, shadow.z);
  mirror(particles.q, shadow.q);
  shadow.qhat.resize(levels.size());
  shadow.grids.resize(levels.size());
  for (std::size_t l = 0; l < levels.size(); ++l) {
    mirror(levels[l].all_qhat(), shadow.qhat[l]);
    mirror(levels[l].all_grids(), shadow.grids[l]);
  }
  return shadow;
}

void Fp32Shadow::refresh_charges(const OrderedParticles& particles,
                                 std::span<const ClusterMoments> levels) {
  mirror(particles.q, q);
  for (std::size_t l = 0; l < levels.size() && l < qhat.size(); ++l) {
    mirror(levels[l].all_qhat(), qhat[l]);
  }
}

void Fp32Shadow::patch_positions(
    const OrderedParticles& particles,
    std::span<const std::pair<std::size_t, std::size_t>> moved_ranges,
    std::span<const std::size_t> dirty_clusters,
    std::span<const ClusterMoments> levels) {
  for (const auto& [begin, end] : moved_ranges) {
    for (std::size_t i = begin; i < end; ++i) {
      x[i] = static_cast<float>(particles.x[i]);
      y[i] = static_cast<float>(particles.y[i]);
      z[i] = static_cast<float>(particles.z[i]);
      q[i] = static_cast<float>(particles.q[i]);
    }
  }
  for (std::size_t l = 0; l < levels.size() && l < qhat.size(); ++l) {
    const std::size_t ppc = levels[l].points_per_cluster();
    const std::span<const double> all = levels[l].all_qhat();
    for (const std::size_t c : dirty_clusters) {
      const std::size_t off = c * ppc;
      for (std::size_t k = 0; k < ppc; ++k) {
        qhat[l][off + k] = static_cast<float>(all[off + k]);
      }
    }
  }
}

}  // namespace bltc
