#include "core/gpu_engine.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/barycentric.hpp"
#include "core/chebyshev.hpp"
#include "core/cpu_kernels.hpp"  // dual_transfer_apply (downward pass)
#include "gpusim/buffer.hpp"
#include "gpusim/perf_model.hpp"
#include "mesh/mesh.hpp"
#include "util/failpoints.hpp"

namespace bltc {

double kernel_eval_weight(const KernelSpec& spec, bool on_gpu) {
  switch (spec.type) {
    case KernelType::kCoulomb:
      return 1.0;
    case KernelType::kYukawa:
      // exp + div: the paper measures ~1.5x (GPU) / ~1.8x (CPU) vs Coulomb.
      return on_gpu ? 1.5 : 1.8;
    case KernelType::kGaussian:
      return on_gpu ? 1.3 : 1.5;
    case KernelType::kMultiquadric:
      return 1.1;
    case KernelType::kInverseSquare:
      return 0.9;
    case KernelType::kCoulombErfc:
      // erfc + exp + div: comparable transcendental load to Yukawa.
      return on_gpu ? 1.5 : 1.8;
  }
  return 1.0;
}

namespace {

/// The two preprocessing kernels (Eqs. 14-15) for one cluster, writing its
/// modified charges into `out`. Shared by the full-tree precompute and the
/// dirty-cluster incremental variant; `qtilde`/`hit` are caller scratch
/// reused across launches.
void gpu_precompute_one_cluster(gpusim::Device& device, const ClusterTree& tree,
                                const OrderedParticles& sources,
                                const ClusterMoments& moments, std::size_t m,
                                const std::vector<double>& w, int ci,
                                std::span<double> out,
                                std::vector<double>& qtilde,
                                std::vector<unsigned char>& hit) {
  const ClusterNode& node = tree.node(ci);
  const auto gx = moments.grid(ci, 0);
  const auto gy = moments.grid(ci, 1);
  const auto gz = moments.grid(ci, 2);
  const std::size_t ppc = out.size();

  qtilde.assign(node.count(), 0.0);
  hit.assign(node.count(), 0);

    // --- Preprocessing kernel 1 (Eq. 14): one block per source particle,
    // threads parallelize over the interpolation degree computing the three
    // denominator sums, followed by a block reduction. O((n+1) N_C) work.
    {
      gpusim::KernelCost cost;
      cost.evals = static_cast<double>(node.count()) *
                   static_cast<double>(3 * m) / 3.0;  // ~ (n+1) per particle
      cost.blocks = node.count();
      device.launch(device.next_stream(), cost, [&] {
        for (std::size_t j = 0; j < node.count(); ++j) {  // block index
          const std::size_t p = node.begin + j;
          // Threads: each of the 3(n+1) denominator terms in parallel,
          // then a reduction per dimension.
          const Denominator d1 = barycentric_denominator(gx, w, sources.x[p]);
          const Denominator d2 = barycentric_denominator(gy, w, sources.y[p]);
          const Denominator d3 = barycentric_denominator(gz, w, sources.z[p]);
          if (d1.hit >= 0 || d2.hit >= 0 || d3.hit >= 0) {
            // Coordinate coincides with a Chebyshev coordinate: the
            // factorized form is invalid; flag for the delta-condition path.
            hit[j] = 1;
            continue;
          }
          qtilde[j] = sources.q[p] / (d1.value * d2.value * d3.value);
        }
      });
    }

    // --- Preprocessing kernel 2 (Eq. 15): one block per Chebyshev point,
    // threads parallelize over the cluster's source particles, followed by
    // a block reduction. O((n+1)^3 N_C) work.
    {
      gpusim::KernelCost cost;
      cost.evals = static_cast<double>(ppc) * static_cast<double>(node.count());
      cost.blocks = ppc;
      device.launch(device.next_stream(), cost, [&] {
        for (std::size_t k1 = 0; k1 < m; ++k1) {    // block index (k1,k2,k3)
          for (std::size_t k2 = 0; k2 < m; ++k2) {
            for (std::size_t k3 = 0; k3 < m; ++k3) {
              double acc = 0.0;  // block reduction over threads j
              for (std::size_t j = 0; j < node.count(); ++j) {
                if (hit[j]) continue;
                const std::size_t p = node.begin + j;
                acc += (w[k1] / (sources.x[p] - gx[k1])) *
                       (w[k2] / (sources.y[p] - gy[k2])) *
                       (w[k3] / (sources.z[p] - gz[k3])) * qtilde[j];
              }
              out[(k1 * m + k2) * m + k3] = acc;
            }
          }
        }
        // Delta-condition cleanup for flagged particles (§2.3): enforces
        // L_k = delta in the coincident dimension(s). Runs as a small tail
        // within the same launch; the flagged count is O(1) per cluster
        // (box-corner particles) so its cost is negligible.
        std::vector<double> l1(m), l2(m), l3(m);
        for (std::size_t j = 0; j < node.count(); ++j) {
          if (!hit[j]) continue;
          const std::size_t p = node.begin + j;
          barycentric_basis(gx, w, sources.x[p], l1);
          barycentric_basis(gy, w, sources.y[p], l2);
          barycentric_basis(gz, w, sources.z[p], l3);
          const double qj = sources.q[p];
          for (std::size_t k1 = 0; k1 < m; ++k1) {
            const double a = l1[k1] * qj;
            if (a == 0.0) continue;
            for (std::size_t k2 = 0; k2 < m; ++k2) {
              const double ab = a * l2[k2];
              if (ab == 0.0) continue;
              double* row = out.data() + (k1 * m + k2) * m;
              for (std::size_t k3 = 0; k3 < m; ++k3) row[k3] += ab * l3[k3];
            }
          }
        }
      });
    }
}

}  // namespace

GpuPrecomputeResult gpu_precompute_moments_device_resident(
    gpusim::Device& device, const ClusterTree& tree,
    const OrderedParticles& sources, const ClusterMoments& moments,
    int degree) {
  const std::size_t m = static_cast<std::size_t>(degree) + 1;
  const std::size_t ppc = moments.points_per_cluster();
  const std::vector<double> w = chebyshev2_weights(degree);

  gpusim::DeviceBuffer<double> dqhat(device, tree.num_nodes() * ppc);
  auto qhat_all = dqhat.span();

  // Per-cluster scratch, reused across launches (device-resident in a real
  // implementation).
  std::vector<double> qtilde;
  std::vector<unsigned char> hit;

  for (std::size_t c = 0; c < tree.num_nodes(); ++c) {
    const int ci = static_cast<int>(c);
    if (tree.node(ci).count() == 0) continue;
    gpu_precompute_one_cluster(device, tree, sources, moments, m, w, ci,
                               {qhat_all.data() + c * ppc, ppc}, qtilde, hit);
  }

  device.synchronize();

  // DtH: modified charges return to the host, where (in the distributed
  // code) they are exposed through RMA windows for LET construction.
  GpuPrecomputeResult result;
  result.qhat = dqhat.copy_to_host();
  return result;
}

GpuPrecomputeResult gpu_precompute_moments_clusters(
    gpusim::Device& device, const ClusterTree& tree,
    const OrderedParticles& sources, const ClusterMoments& moments, int degree,
    std::span<const std::size_t> clusters) {
  const std::size_t m = static_cast<std::size_t>(degree) + 1;
  const std::size_t ppc = moments.points_per_cluster();
  const std::vector<double> w = chebyshev2_weights(degree);

  // Device scratch sized to the dirty subset only: the resident full-size
  // charge array is patched from it range-by-range by the caller.
  gpusim::DeviceBuffer<double> dqhat(device, clusters.size() * ppc);
  auto qhat_all = dqhat.span();

  std::vector<double> qtilde;
  std::vector<unsigned char> hit;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    const int ci = static_cast<int>(clusters[i]);
    if (tree.node(ci).count() == 0) continue;
    gpu_precompute_one_cluster(device, tree, sources, moments, m, w, ci,
                               {qhat_all.data() + i * ppc, ppc}, qtilde, hit);
  }

  device.synchronize();

  // DtH: only the dirty clusters' modified charges return to the host.
  GpuPrecomputeResult result;
  result.qhat = dqhat.copy_to_host();
  return result;
}

void apply_precompute_result(const GpuPrecomputeResult& result,
                             const ClusterTree& tree, ClusterMoments& moments) {
  const std::size_t ppc = moments.points_per_cluster();
  for (std::size_t c = 0; c < tree.num_nodes(); ++c) {
    auto dst = moments.qhat_mutable(static_cast<int>(c));
    const double* src = result.qhat.data() + c * ppc;
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = src[i];
  }
}

GpuPrecomputeResult gpu_precompute_moments(gpusim::Device& device,
                                           const ClusterTree& tree,
                                           const OrderedParticles& sources,
                                           const ClusterMoments& moments,
                                           int degree) {
  // HtD: source particles (coordinates + charges) enter the device data
  // region once for the whole precompute (§3.2 data management).
  gpusim::DeviceBuffer<double> dsx(device, std::span<const double>(sources.x));
  gpusim::DeviceBuffer<double> dsy(device, std::span<const double>(sources.y));
  gpusim::DeviceBuffer<double> dsz(device, std::span<const double>(sources.z));
  gpusim::DeviceBuffer<double> dsq(device, std::span<const double>(sources.q));
  return gpu_precompute_moments_device_resident(device, tree, sources,
                                                moments, degree);
}

namespace {

// Shifted kernel bodies (periodic boundaries): the entry's lattice shift —
// resolved from the (device-resident) shift table by its compact id via
// resolve_shift/resolve_pair_shift (core/periodic.hpp) — is subtracted from
// the target-source separation, i.e. the kernels see the source stream at
// its image position without any image copy existing in device memory.

/// Body of the batch-cluster approximation kernel (Eq. 11), templated on
/// the accumulation precision: Real = double is the paper's configuration,
/// Real = float is the §5 mixed-precision future-work mode (kernel values
/// and accumulators in single precision; coordinates stay double).
template <typename Real, typename Kernel>
void approx_kernel_body(const OrderedParticles& targets,
                        const TargetBatch& batch, std::span<const double> gx,
                        std::span<const double> gy, std::span<const double> gz,
                        std::span<const double> qhat, Kernel k,
                        std::span<double> phi,
                        const ResolvedShift& shift = {}) {
  const std::size_t m = gx.size();
  for (std::size_t i = batch.begin; i < batch.end; ++i) {
    const double tx = targets.x[i] - shift.x;
    const double ty = targets.y[i] - shift.y;
    const double tz = targets.z[i] - shift.z;
    Real acc = Real(0);
    for (std::size_t k1 = 0; k1 < m; ++k1) {
      const double dx2 = (tx - gx[k1]) * (tx - gx[k1]);
      for (std::size_t k2 = 0; k2 < m; ++k2) {
        const double dy = ty - gy[k2];
        const double dxy2 = dx2 + dy * dy;
        const double* qrow = qhat.data() + (k1 * m + k2) * m;
        for (std::size_t k3 = 0; k3 < m; ++k3) {
          const double dz = tz - gz[k3];
          acc += static_cast<Real>(k(dxy2 + dz * dz)) *
                 static_cast<Real>(qrow[k3]);
        }
      }
    }
    phi[i] += static_cast<double>(acc);  // #pragma acc atomic in real code
  }
}

/// Body of the batch-cluster direct sum kernel (Eq. 9), same templating.
template <typename Real, typename Kernel>
void direct_kernel_body(const OrderedParticles& targets,
                        const TargetBatch& batch,
                        const OrderedParticles& sources,
                        const ClusterNode& node, Kernel k,
                        std::span<double> phi,
                        const ResolvedShift& shift = {}) {
  for (std::size_t i = batch.begin; i < batch.end; ++i) {
    const double tx = targets.x[i] - shift.x;
    const double ty = targets.y[i] - shift.y;
    const double tz = targets.z[i] - shift.z;
    Real acc = Real(0);
    for (std::size_t j = node.begin; j < node.end; ++j) {
      const double dx = tx - sources.x[j];
      const double dy = ty - sources.y[j];
      const double dz = tz - sources.z[j];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if constexpr (Kernel::kSingular) {
        if (r2 == 0.0) continue;
      }
      acc += static_cast<Real>(k(r2)) * static_cast<Real>(sources.q[j]);
    }
    phi[i] += static_cast<double>(acc);  // #pragma acc atomic in real code
  }
}

/// Accumulate one source stream (particles or proxy points) onto a target
/// node's grid potentials — the body shared by the CC and CP launch classes.
template <typename Real, typename Kernel>
void grid_accumulate_body(std::span<const double> tx, std::span<const double> ty,
                          std::span<const double> tz, const double* sx,
                          const double* sy, const double* sz, const double* sq,
                          std::size_t ns, Kernel k, double* hat,
                          const ResolvedShift& shift = {}) {
  const std::size_t m = tx.size();
  std::size_t p = 0;
  for (std::size_t k1 = 0; k1 < m; ++k1) {
    for (std::size_t k2 = 0; k2 < m; ++k2) {
      for (std::size_t k3 = 0; k3 < m; ++k3, ++p) {
        const double x = tx[k1] - shift.x;
        const double y = ty[k2] - shift.y;
        const double z = tz[k3] - shift.z;
        Real acc = Real(0);
        for (std::size_t j = 0; j < ns; ++j) {
          const double dx = x - sx[j];
          const double dy = y - sy[j];
          const double dz = z - sz[j];
          const double r2 = dx * dx + dy * dy + dz * dz;
          if constexpr (Kernel::kSingular) {
            if (r2 == 0.0) continue;
          }
          acc += static_cast<Real>(k(r2)) * static_cast<Real>(sq[j]);
        }
        hat[p] += static_cast<double>(acc);
      }
    }
  }
}

/// Symmetric direct bodies for self-mode dual traversals (targets ==
/// sources): one G per unordered point pair, accumulated into both sides.
template <typename Real, typename Kernel>
void direct_mutual_body(const OrderedParticles& pts, const ClusterNode& a,
                        const ClusterNode& b, Kernel k,
                        std::span<double> phi) {
  for (std::size_t i = a.begin; i < a.end; ++i) {
    Real acc = Real(0);
    for (std::size_t j = b.begin; j < b.end; ++j) {
      const double dx = pts.x[i] - pts.x[j];
      const double dy = pts.y[i] - pts.y[j];
      const double dz = pts.z[i] - pts.z[j];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if constexpr (Kernel::kSingular) {
        if (r2 == 0.0) continue;
      }
      const Real g = static_cast<Real>(k(r2));
      acc += g * static_cast<Real>(pts.q[j]);
      phi[j] += static_cast<double>(g * static_cast<Real>(pts.q[i]));
    }
    phi[i] += static_cast<double>(acc);
  }
}

template <typename Real, typename Kernel>
void direct_self_body(const OrderedParticles& pts, const ClusterNode& a,
                      Kernel k, std::span<double> phi) {
  for (std::size_t i = a.begin; i < a.end; ++i) {
    Real acc = Real(0);
    for (std::size_t j = i + 1; j < a.end; ++j) {
      const double dx = pts.x[i] - pts.x[j];
      const double dy = pts.y[i] - pts.y[j];
      const double dz = pts.z[i] - pts.z[j];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if constexpr (Kernel::kSingular) {
        if (r2 == 0.0) continue;
      }
      const Real g = static_cast<Real>(k(r2));
      acc += g * static_cast<Real>(pts.q[j]);
      phi[j] += static_cast<double>(g * static_cast<Real>(pts.q[i]));
    }
    phi[i] += static_cast<double>(acc);
  }
  if constexpr (!Kernel::kSingular) {
    const double g0 = k(0.0);
    for (std::size_t i = a.begin; i < a.end; ++i) phi[i] += g0 * pts.q[i];
  }
}

/// Interpolate a grid's accumulated potentials: parent grid -> child grid
/// points (downward transfer) or leaf grid -> particles. `hat` is the
/// source grid's (n+1)^3 potentials on the grids of `node_grids[ni]`.
void interpolate_hat(std::span<const double> gx, std::span<const double> gy,
                     std::span<const double> gz, std::span<const double> w,
                     const double* hat, double x, double y, double z,
                     std::vector<double>& l1, std::vector<double>& l2,
                     std::vector<double>& l3, double& out) {
  const std::size_t m = gx.size();
  barycentric_basis(gx, w, x, l1);
  barycentric_basis(gy, w, y, l2);
  barycentric_basis(gz, w, z, l3);
  double acc = 0.0;
  for (std::size_t k1 = 0; k1 < m; ++k1) {
    if (l1[k1] == 0.0) continue;
    for (std::size_t k2 = 0; k2 < m; ++k2) {
      const double a = l1[k1] * l2[k2];
      if (a == 0.0) continue;
      const double* row = hat + (k1 * m + k2) * m;
      for (std::size_t k3 = 0; k3 < m; ++k3) acc += a * l3[k3] * row[k3];
    }
  }
  out += acc;
}

}  // namespace

std::vector<double> gpu_evaluate_dual_device_resident(
    gpusim::Device& device, const OrderedParticles& targets,
    const ClusterTree& target_tree,
    std::span<const ClusterMoments> target_grids,
    const DualInteractionLists& lists, const ClusterTree& source_tree,
    const OrderedParticles& sources,
    std::span<const ClusterMoments> moment_levels, const KernelSpec& kernel,
    EngineCounters* counters, const ShiftTable* shifts) {
  const std::size_t nn = target_tree.num_nodes();
  const std::size_t nlevels = target_grids.size();
  // Per-launch precision: a pair tagged fp32-eligible by the list builder
  // runs single precision at the 2:1 FP32:FP64 modeled throughput of the
  // paper's GPUs (Titan V); untagged pairs — every direct pair — run fp64.
  const double weight = kernel_eval_weight(kernel, /*on_gpu=*/true);

  // Per-level grid-potential scratch (resident in a real implementation;
  // the engine's tgt_hat_ buffer stands in for it between calls).
  std::vector<std::size_t> lppc(nlevels), hat_off(nlevels);
  std::size_t total = 0;
  for (std::size_t l = 0; l < nlevels; ++l) {
    lppc[l] = target_grids[l].points_per_cluster();
    hat_off[l] = total;
    total += nn * lppc[l];
  }
  std::vector<double> hat(total, 0.0);
  std::vector<unsigned char> flag(nlevels * nn, 0);
  std::vector<double> phi_store(targets.size(), 0.0);
  const std::span<double> phi = phi_store;
  EngineCounters local;

  with_kernel(kernel, [&](auto k) {
    // --- CC / CP kernels: one launch per pair, one target grid point per
    // block, threads over the source stream with a block reduction.
    for (std::size_t g = 0; g < lists.grid_nodes.size(); ++g) {
      const int ti = lists.grid_nodes[g];
      for (std::size_t e = lists.grid_offsets[g];
           e < lists.grid_offsets[g + 1]; ++e) {
        const DualPair& pair = lists.grid_pairs[e];
        const std::size_t level = pair.level;
        const bool f32 = pair.fp32 != 0;
        const ClusterMoments& tg = target_grids[level];
        const ClusterMoments& sm = moment_levels[level];
        const std::size_t ppc = lppc[level];
        const std::size_t m = static_cast<std::size_t>(tg.degree()) + 1;
        const ResolvedShift shift = resolve_pair_shift(shifts, pair);
        flag[level * nn + static_cast<std::size_t>(ti)] = 1;
        const auto tx = tg.grid(ti, 0);
        const auto ty = tg.grid(ti, 1);
        const auto tz = tg.grid(ti, 2);
        double* hrow =
            hat.data() + hat_off[level] + static_cast<std::size_t>(ti) * ppc;
        if (pair.kind == DualKind::kCC) {
          const auto sgx = sm.grid(pair.source, 0);
          const auto sgy = sm.grid(pair.source, 1);
          const auto sgz = sm.grid(pair.source, 2);
          const auto qhat = sm.qhat(pair.source);
          // Expand the source proxy grid once per launch (device scratch).
          std::vector<double> sx(ppc), sy(ppc), sz(ppc);
          std::size_t p = 0;
          for (std::size_t s1 = 0; s1 < m; ++s1) {
            for (std::size_t s2 = 0; s2 < m; ++s2) {
              for (std::size_t s3 = 0; s3 < m; ++s3, ++p) {
                sx[p] = sgx[s1];
                sy[p] = sgy[s2];
                sz[p] = sgz[s3];
              }
            }
          }
          const double evals = static_cast<double>(ppc) *
                               static_cast<double>(ppc);
          gpusim::KernelCost cost;
          cost.evals = weight * (f32 ? 0.5 : 1.0) * evals;
          cost.blocks = ppc;
          device.launch(device.next_stream(), cost,
                        [&, tx, ty, tz, hrow, shift] {
            if (f32) {
              grid_accumulate_body<float>(tx, ty, tz, sx.data(), sy.data(),
                                          sz.data(), qhat.data(), ppc, k,
                                          hrow, shift);
            } else {
              grid_accumulate_body<double>(tx, ty, tz, sx.data(), sy.data(),
                                           sz.data(), qhat.data(), ppc, k,
                                           hrow, shift);
            }
          });
          local.cc_evals += evals;
          if (f32) local.fp32_evals += evals;
          ++local.cc_launches;
        } else {  // kCP
          const ClusterNode& s = source_tree.node(pair.source);
          const double evals = static_cast<double>(ppc) *
                               static_cast<double>(s.count());
          gpusim::KernelCost cost;
          cost.evals = weight * (f32 ? 0.5 : 1.0) * evals;
          cost.blocks = ppc;
          device.launch(device.next_stream(), cost,
                        [&, tx, ty, tz, hrow, s, shift] {
            if (f32) {
              grid_accumulate_body<float>(
                  tx, ty, tz, sources.x.data() + s.begin,
                  sources.y.data() + s.begin, sources.z.data() + s.begin,
                  sources.q.data() + s.begin, s.count(), k, hrow, shift);
            } else {
              grid_accumulate_body<double>(
                  tx, ty, tz, sources.x.data() + s.begin,
                  sources.y.data() + s.begin, sources.z.data() + s.begin,
                  sources.q.data() + s.begin, s.count(), k, hrow, shift);
            }
          });
          local.cp_evals += evals;
          if (f32) local.fp32_evals += evals;
          ++local.cp_launches;
        }
      }
    }

    // --- Downward pass kernel chain, per ladder level. Transfers run
    // parent-before-child (node index order); interpolation is kernel-
    // independent double-precision work, so its modeled cost carries no
    // kernel weight.
    for (std::size_t level = 0; level < nlevels; ++level) {
      const ClusterMoments& tg = target_grids[level];
      const std::size_t ppc = lppc[level];
      const std::size_t m = static_cast<std::size_t>(tg.degree()) + 1;
      const std::vector<double> w = chebyshev2_weights(tg.degree());
      std::vector<double> l1(m), l2(m), l3(m);
      std::vector<double> b1(m * m), b2(m * m), b3(m * m);
      std::vector<double> tmp1(ppc), tmp2(ppc);
      unsigned char* lflag = flag.data() + level * nn;
      double* lhat = hat.data() + hat_off[level];
      for (std::size_t ni = 0; ni < nn; ++ni) {
        if (!lflag[ni]) continue;
        const ClusterNode& node = target_tree.node(static_cast<int>(ni));
        if (node.is_leaf()) continue;
        const auto pgx = tg.grid(static_cast<int>(ni), 0);
        const auto pgy = tg.grid(static_cast<int>(ni), 1);
        const auto pgz = tg.grid(static_cast<int>(ni), 2);
        const double* prow = lhat + ni * ppc;
        gpusim::KernelCost cost;
        cost.evals = static_cast<double>(node.num_children) *
                     static_cast<double>(ppc);
        cost.blocks = static_cast<std::size_t>(node.num_children);
        device.launch(device.next_stream(), cost, [&] {
          for (int c = 0; c < node.num_children; ++c) {
            const int ci = node.children[static_cast<std::size_t>(c)];
            const auto cgx = tg.grid(ci, 0);
            const auto cgy = tg.grid(ci, 1);
            const auto cgz = tg.grid(ci, 2);
            for (std::size_t kp = 0; kp < m; ++kp) {
              barycentric_basis(pgx, w, cgx[kp], {b1.data() + kp * m, m});
              barycentric_basis(pgy, w, cgy[kp], {b2.data() + kp * m, m});
              barycentric_basis(pgz, w, cgz[kp], {b3.data() + kp * m, m});
            }
            dual_transfer_apply(prow, lhat + static_cast<std::size_t>(ci) * ppc,
                                b1.data(), b2.data(), b3.data(), m,
                                tmp1.data(), tmp2.data());
            lflag[static_cast<std::size_t>(ci)] = 1;
          }
        });
      }
      for (std::size_t ni = 0; ni < nn; ++ni) {
        if (!lflag[ni]) continue;
        const ClusterNode& node = target_tree.node(static_cast<int>(ni));
        if (!node.is_leaf() || node.count() == 0) continue;
        const auto gx = tg.grid(static_cast<int>(ni), 0);
        const auto gy = tg.grid(static_cast<int>(ni), 1);
        const auto gz = tg.grid(static_cast<int>(ni), 2);
        const double* hrow = lhat + ni * ppc;
        gpusim::KernelCost cost;
        cost.evals = static_cast<double>(node.count()) *
                     static_cast<double>(ppc);
        cost.blocks = node.count();
        device.launch(device.next_stream(), cost, [&] {
          for (std::size_t i = node.begin; i < node.end; ++i) {
            interpolate_hat(gx, gy, gz, w, hrow, targets.x[i], targets.y[i],
                            targets.z[i], l1, l2, l3, phi[i]);
          }
        });
      }
    }

    // --- PC / direct kernels, target leaves as batches: the existing
    // batch-cluster bodies (Eqs. 9 and 11) apply unchanged.
    for (std::size_t g = 0; g < lists.leaf_nodes.size(); ++g) {
      const ClusterNode& leaf = target_tree.node(lists.leaf_nodes[g]);
      TargetBatch batch;
      batch.begin = leaf.begin;
      batch.end = leaf.end;
      for (std::size_t e = lists.leaf_offsets[g];
           e < lists.leaf_offsets[g + 1]; ++e) {
        const DualPair& pair = lists.leaf_pairs[e];
        const ResolvedShift shift = resolve_pair_shift(shifts, pair);
        if (pair.kind == DualKind::kPC) {
          const bool f32 = pair.fp32 != 0;
          const ClusterMoments& sm = moment_levels[pair.level];
          const std::size_t ppc = sm.points_per_cluster();
          const auto gx = sm.grid(pair.source, 0);
          const auto gy = sm.grid(pair.source, 1);
          const auto gz = sm.grid(pair.source, 2);
          const auto qhat = sm.qhat(pair.source);
          const double evals = static_cast<double>(batch.count()) *
                               static_cast<double>(ppc);
          gpusim::KernelCost cost;
          cost.evals = weight * (f32 ? 0.5 : 1.0) * evals;
          cost.blocks = batch.count();
          device.launch(device.next_stream(), cost, [&, gx, gy, gz, qhat,
                                                     batch, shift] {
            if (f32) {
              approx_kernel_body<float>(targets, batch, gx, gy, gz, qhat, k,
                                        phi, shift);
            } else {
              approx_kernel_body<double>(targets, batch, gx, gy, gz, qhat, k,
                                         phi, shift);
            }
          });
          local.approx_evals += evals;
          if (f32) local.fp32_evals += evals;
          ++local.approx_launches;
        } else if (!lists.self) {  // one-directional direct, always fp64
          const ClusterNode& s = source_tree.node(pair.source);
          gpusim::KernelCost cost;
          cost.evals = weight * static_cast<double>(batch.count()) *
                       static_cast<double>(s.count());
          cost.blocks = batch.count();
          device.launch(device.next_stream(), cost, [&, s, batch, shift] {
            direct_kernel_body<double>(targets, batch, sources, s, k, phi,
                                       shift);
          });
          local.direct_evals += static_cast<double>(batch.count()) *
                                static_cast<double>(s.count());
          ++local.direct_launches;
        } else if (pair.source == lists.leaf_nodes[g]) {
          // Diagonal self-pair: triangular sum (half the evaluations).
          const double evals =
              static_cast<double>(batch.count()) *
              (static_cast<double>(batch.count()) - 1.0) / 2.0;
          gpusim::KernelCost cost;
          cost.evals = weight * evals;
          cost.blocks = batch.count();
          // Self mode: target and source orders are identical, but only
          // the source particles see update_charges — read everything from
          // the live source arrays.
          device.launch(device.next_stream(), cost, [&] {
            direct_self_body<double>(sources, leaf, k, phi);
          });
          local.direct_evals += evals;
          ++local.direct_launches;
        } else {
          // Symmetric off-diagonal direct: each G feeds both leaves.
          const ClusterNode& s = source_tree.node(pair.source);
          const double evals = static_cast<double>(batch.count()) *
                               static_cast<double>(s.count());
          gpusim::KernelCost cost;
          cost.evals = weight * evals;
          cost.blocks = batch.count();
          device.launch(device.next_stream(), cost, [&, s] {
            direct_mutual_body<double>(sources, leaf, s, k, phi);
          });
          local.direct_evals += evals;
          ++local.direct_launches;
        }
      }
    }
  });

  device.synchronize();
  local.fp64_evals = local.total_evals() - local.fp32_evals;
  if (counters != nullptr) *counters = local;
  return phi_store;
}

std::vector<double> gpu_evaluate_device_resident(
    gpusim::Device& device, const OrderedParticles& targets,
    const std::vector<TargetBatch>& batches, const InteractionLists& lists,
    const ClusterTree& tree, const OrderedParticles& sources,
    const ClusterMoments& moments, const KernelSpec& kernel,
    EngineCounters* counters, const ShiftTable* shifts) {
  std::vector<double> phi_store(targets.size(), 0.0);
  const std::span<double> phi = phi_store;
  // Per-launch precision: approximation launches tagged fp32-eligible run
  // single precision, which roughly doubles effective throughput on the
  // paper's GPUs (Titan V FP32:FP64 = 2:1); direct launches always run
  // fp64 (they have no truncation budget to hide the float floor in).
  const double weight = kernel_eval_weight(kernel, /*on_gpu=*/true);
  EngineCounters local;

  with_kernel(kernel, [&](auto k) {
    // The CPU walks the interaction lists and queues one kernel per
    // batch-cluster interaction, cycling the stream id (§3.2 asynchronous
    // streams). Potential updates use an atomic add in the real code; the
    // simulated device executes launches in queue order, which makes the
    // accumulation race-free here (documented simplification).
    for (std::size_t b = 0; b < batches.size(); ++b) {
      const TargetBatch& batch = batches[b];
      const BatchInteractions& bi = lists.per_batch[b];

      for (std::size_t e = 0; e < bi.approx.size(); ++e) {
        const int ci = bi.approx[e];
        const bool f32 = e < bi.approx_fp32.size() && bi.approx_fp32[e] != 0;
        const ResolvedShift shift = resolve_shift(shifts, bi.approx_shift, e);
        const auto gx = moments.grid(ci, 0);
        const auto gy = moments.grid(ci, 1);
        const auto gz = moments.grid(ci, 2);
        const auto qhat = moments.qhat(ci);
        const double evals = static_cast<double>(batch.count()) *
                             static_cast<double>(qhat.size());
        gpusim::KernelCost cost;
        cost.evals = weight * (f32 ? 0.5 : 1.0) * evals;
        cost.blocks = batch.count();
        device.launch(device.next_stream(), cost,
                      [&, gx, gy, gz, qhat, shift] {
          // Batch-cluster approximation kernel (Eq. 11): one target per
          // block; threads over Chebyshev points with a block reduction.
          // The shift is read from the device-resident table by id.
          if (f32) {
            approx_kernel_body<float>(targets, batch, gx, gy, gz, qhat, k,
                                      phi, shift);
          } else {
            approx_kernel_body<double>(targets, batch, gx, gy, gz, qhat, k,
                                       phi, shift);
          }
        });
        local.approx_evals += evals;
        if (f32) local.fp32_evals += evals;
        ++local.approx_launches;
      }

      for (std::size_t e = 0; e < bi.direct.size(); ++e) {
        const ClusterNode& node = tree.node(bi.direct[e]);
        const ResolvedShift shift = resolve_shift(shifts, bi.direct_shift, e);
        gpusim::KernelCost cost;
        cost.evals = weight * static_cast<double>(batch.count()) *
                     static_cast<double>(node.count());
        cost.blocks = batch.count();
        device.launch(device.next_stream(), cost, [&, node, shift] {
          // Batch-cluster direct sum kernel (Eq. 9): one target per block;
          // threads over the cluster's source particles with a reduction.
          // Direct tiles run fp64 under every precision policy.
          direct_kernel_body<double>(targets, batch, sources, node, k, phi,
                                     shift);
        });
        local.direct_evals += static_cast<double>(batch.count()) *
                              static_cast<double>(node.count());
        ++local.direct_launches;
      }
    }
  });

  device.synchronize();
  local.fp64_evals = local.total_evals() - local.fp32_evals;
  if (counters != nullptr) *counters = local;
  return phi_store;
}

std::vector<double> gpu_evaluate(gpusim::Device& device,
                                 const OrderedParticles& targets,
                                 const std::vector<TargetBatch>& batches,
                                 const InteractionLists& lists,
                                 const ClusterTree& tree,
                                 const OrderedParticles& sources,
                                 const ClusterMoments& moments,
                                 const KernelSpec& kernel,
                                 EngineCounters* counters,
                                 const ShiftTable* shifts) {
  // HtD: targets, source particles (for direct interactions), cluster grid
  // coordinates and modified charges (the serial-run equivalent of copying
  // the LET onto the device).
  gpusim::DeviceBuffer<double> dtx(device, std::span<const double>(targets.x));
  gpusim::DeviceBuffer<double> dty(device, std::span<const double>(targets.y));
  gpusim::DeviceBuffer<double> dtz(device, std::span<const double>(targets.z));
  gpusim::DeviceBuffer<double> dsx(device, std::span<const double>(sources.x));
  gpusim::DeviceBuffer<double> dsy(device, std::span<const double>(sources.y));
  gpusim::DeviceBuffer<double> dsz(device, std::span<const double>(sources.z));
  gpusim::DeviceBuffer<double> dsq(device, std::span<const double>(sources.q));
  gpusim::DeviceBuffer<double> dgrids(device, moments.all_grids());
  gpusim::DeviceBuffer<double> dqhat(device, moments.all_qhat());
  std::unique_ptr<gpusim::DeviceBuffer<double>> dshifts;
  if (shifts != nullptr) {
    const std::vector<double> flat = shifts->flattened();
    dshifts = std::make_unique<gpusim::DeviceBuffer<double>>(
        device, std::span<const double>(flat));
  }

  std::vector<double> phi = gpu_evaluate_device_resident(
      device, targets, batches, lists, tree, sources, moments, kernel,
      counters, shifts);

  // DtH: final potentials.
  device.device_to_host(phi.size() * sizeof(double));
  return phi;
}

GpuSimEngine::GpuSimEngine(const GpuOptions& options)
    : options_(options), device_(options.device, options.async_streams) {}

void GpuSimEngine::prepare_sources(const SourcePlan& plan,
                                   const TreecodeParams& params,
                                   bool charges_only) {
  // Injected before any device mutation, so a tripped staging attempt
  // leaves prior staged state intact and the whole call is retryable.
  failpoint(failpoints::sites::kGpuStage);
  const OrderedParticles& src = *plan.particles;
  const ClusterTree& tree = *plan.tree;

  if (charges_only) {
    // Update-device of the charges alone (coordinates, tree, and grids are
    // unchanged and stay resident).
    src_q_->upload(src.q);
  } else {
    // HtD: source particles enter the device data region once for the
    // lifetime of this source plan (§3.2 data management).
    src_x_ = std::make_unique<Buffer>(device_, std::span<const double>(src.x));
    src_y_ = std::make_unique<Buffer>(device_, std::span<const double>(src.y));
    src_z_ = std::make_unique<Buffer>(device_, std::span<const double>(src.z));
    src_q_ = std::make_unique<Buffer>(device_, std::span<const double>(src.q));
    moments_ = ClusterMoments::grids_only(tree, params.degree);
    pending_host_setup_particles_ += src.size();
    // A new source plan invalidates whatever target data was staged: the
    // interaction lists that referenced the old tree are gone.
    tgt_x_.reset();
    tgt_y_.reset();
    tgt_z_.reset();
    tgt_grids_.reset();
    tgt_hat_.reset();
  }

  // The two preprocessing kernels (Eqs. 14-15) per cluster.
  const gpusim::TimeMarker before = device_.marker();
  GpuPrecomputeResult pre = gpu_precompute_moments_device_resident(
      device_, tree, src, moments_, params.degree);
  const gpusim::TimeMarker after = device_.marker();
  pending_modeled_precompute_ += after.kernel_seconds - before.kernel_seconds;

  apply_precompute_result(pre, tree, moments_);

  // HtD: cluster data (grids + modified charges) staged for the compute
  // phase; stays resident across evaluations. Under a non-fp64 precision
  // policy the cluster arrays are fp32-resident — only far-field launches
  // read them, so a real implementation ships them as floats and the
  // modeled transfer is half the bytes (the simulated kernels still read
  // the double storage; the fp32 arithmetic is modeled by the 2:1 launch
  // weight).
  const std::size_t cluster_elem_bytes =
      params.precision != PrecisionPolicy::kFp64 ? sizeof(float)
                                                 : sizeof(double);
  const auto stage_cluster = [&](std::span<const double> host) {
    auto buf = std::make_unique<Buffer>(device_, host.size());
    std::copy(host.begin(), host.end(), buf->span().begin());
    device_.host_to_device(host.size() * cluster_elem_bytes);
    return buf;
  };
  const auto restage_cluster = [&](Buffer& buf,
                                   std::span<const double> host) {
    std::copy(host.begin(), host.end(), buf.span().begin());
    device_.host_to_device(host.size() * cluster_elem_bytes);
  };
  if (charges_only) {
    restage_cluster(*qhat_, moments_.all_qhat());
  } else {
    grids_ = stage_cluster(moments_.all_grids());
    qhat_ = stage_cluster(moments_.all_qhat());
    // New source geometry orphans the attached LET; the caller re-attaches
    // after the exchange.
    let_.clear();
  }

  // Dual traversal: build the moment ladder. The restrictions are small
  // tensor transfers of the already-resident nominal charges, modeled as
  // one launch per level; the coarse grids and charges stay device
  // resident (charges-only refreshes re-upload the charge arrays alone).
  dual_moments_.clear();
  if (!charges_only) {
    dual_grids_.clear();
    dual_qhat_.clear();
  }
  if (params.traversal == TraversalMode::kDual) {
    const std::vector<int> ladder = dual_degree_ladder(params.degree);
    for (std::size_t l = 0; l < ladder.size(); ++l) {
      if (ladder[l] == params.degree) {
        dual_moments_.push_back(moments_);
        continue;
      }
      gpusim::KernelCost cost;
      cost.evals = static_cast<double>(tree.num_nodes()) *
                   static_cast<double>(interpolation_point_count(ladder[l]));
      cost.blocks = tree.num_nodes();
      const gpusim::TimeMarker rb = device_.marker();
      device_.launch(device_.next_stream(), cost, [&] {
        dual_moments_.push_back(
            ClusterMoments::restrict_from(tree, moments_, ladder[l]));
      });
      device_.synchronize();
      pending_modeled_precompute_ +=
          device_.marker().kernel_seconds - rb.kernel_seconds;
    }
    if (charges_only) {
      for (std::size_t l = 1; l < dual_moments_.size(); ++l) {
        restage_cluster(*dual_qhat_[l - 1], dual_moments_[l].all_qhat());
      }
    } else {
      for (std::size_t l = 1; l < dual_moments_.size(); ++l) {
        dual_grids_.push_back(stage_cluster(dual_moments_[l].all_grids()));
        dual_qhat_.push_back(stage_cluster(dual_moments_[l].all_qhat()));
      }
    }
  }
}

void GpuSimEngine::update_sources(const SourcePlan& plan,
                                  const TreecodeParams& params,
                                  const SourceUpdate& update) {
  // Injected before any device mutation: a tripped partial restage leaves
  // the resident state whole and the caller falls back to a full rebuild.
  failpoint(failpoints::sites::kGpuPartialRestage);
  const OrderedParticles& src = *plan.particles;
  const ClusterTree& tree = *plan.tree;
  if (src_x_ == nullptr || src_x_->size() != src.size() ||
      moments_.num_clusters() != tree.num_nodes()) {
    // Nothing resident to patch: full stage.
    prepare_sources(plan, params, /*charges_only=*/false);
    return;
  }

  // Update-device of array sections: only the moved tree-order ranges of
  // the four source streams cross PCIe. Grids stay resident untouched —
  // the boxes are unchanged by an in-topology update.
  std::size_t moved_doubles = 0;
  for (const auto& range : update.moved_ranges) {
    const auto b = static_cast<std::ptrdiff_t>(range.first);
    const auto e = static_cast<std::ptrdiff_t>(range.second);
    std::copy(src.x.begin() + b, src.x.begin() + e, src_x_->span().begin() + b);
    std::copy(src.y.begin() + b, src.y.begin() + e, src_y_->span().begin() + b);
    std::copy(src.z.begin() + b, src.z.begin() + e, src_z_->span().begin() + b);
    std::copy(src.q.begin() + b, src.q.begin() + e, src_q_->span().begin() + b);
    moved_doubles += range.second - range.first;
  }
  device_.host_to_device(4 * moved_doubles * sizeof(double));

  // Re-run the two preprocessing kernels for the dirty clusters only; the
  // packed result returns to the host (proportional DtH) and patches the
  // host mirror plus the resident charge array (proportional HtD).
  const gpusim::TimeMarker before = device_.marker();
  const GpuPrecomputeResult pre = gpu_precompute_moments_clusters(
      device_, tree, src, moments_, params.degree, update.dirty_clusters);
  pending_modeled_precompute_ +=
      device_.marker().kernel_seconds - before.kernel_seconds;

  // fp32-resident charge arrays (precision policy != kFp64) restage their
  // dirty ranges at half the bytes, matching the prepare-time staging model.
  const std::size_t cluster_elem_bytes =
      params.precision != PrecisionPolicy::kFp64 ? sizeof(float)
                                                 : sizeof(double);
  const std::size_t ppc = moments_.points_per_cluster();
  const auto dq = qhat_->span();
  for (std::size_t i = 0; i < update.dirty_clusters.size(); ++i) {
    const std::size_t c = update.dirty_clusters[i];
    const auto dst = moments_.qhat_mutable(static_cast<int>(c));
    const double* s = pre.qhat.data() + i * ppc;
    std::copy(s, s + ppc, dst.begin());
    std::copy(dst.begin(), dst.end(),
              dq.begin() + static_cast<std::ptrdiff_t>(c * ppc));
  }
  device_.host_to_device(update.dirty_clusters.size() * ppc *
                         cluster_elem_bytes);

  // Dual ladder: restrict the dirty clusters per level (one small modeled
  // launch per level) and update-device their coarse charge ranges.
  if (params.traversal == TraversalMode::kDual && !dual_moments_.empty()) {
    for (const std::size_t c : update.dirty_clusters) {
      const auto src_hat = moments_.qhat(static_cast<int>(c));
      const auto dst_hat = dual_moments_.front().qhat_mutable(
          static_cast<int>(c));
      std::copy(src_hat.begin(), src_hat.end(), dst_hat.begin());
    }
    for (std::size_t l = 1; l < dual_moments_.size(); ++l) {
      ClusterMoments& coarse = dual_moments_[l];
      gpusim::KernelCost cost;
      cost.evals = static_cast<double>(update.dirty_clusters.size()) *
                   static_cast<double>(coarse.points_per_cluster());
      cost.blocks = update.dirty_clusters.size();
      const gpusim::TimeMarker rb = device_.marker();
      device_.launch(device_.next_stream(), cost, [&] {
        for (const std::size_t c : update.dirty_clusters) {
          ClusterMoments::restrict_cluster(moments_, static_cast<int>(c),
                                           coarse);
        }
      });
      device_.synchronize();
      pending_modeled_precompute_ +=
          device_.marker().kernel_seconds - rb.kernel_seconds;
      const std::size_t cppc = coarse.points_per_cluster();
      const auto dhat = dual_qhat_[l - 1]->span();
      for (const std::size_t c : update.dirty_clusters) {
        const auto src_hat = coarse.qhat(static_cast<int>(c));
        std::copy(src_hat.begin(), src_hat.end(),
                  dhat.begin() + static_cast<std::ptrdiff_t>(c * cppc));
      }
      device_.host_to_device(update.dirty_clusters.size() * cppc *
                             cluster_elem_bytes);
    }
  }
}

void GpuSimEngine::update_targets(
    const TargetPlan& plan,
    std::span<const std::pair<std::size_t, std::size_t>> moved_ranges) {
  // Serialize against evaluations: the staged target buffers are the same
  // state evaluate_potential reads.
  std::lock_guard<std::mutex> lock(eval_mutex_);
  failpoint(failpoints::sites::kGpuPartialRestage);
  const OrderedParticles& tgt = *plan.particles;
  if (tgt_x_ == nullptr) return;  // nothing staged; next evaluate stages all
  if (tgt_x_->size() != tgt.size()) {
    // Shape changed under us: drop the staged targets, the next evaluate
    // runs the full fresh-target staging path.
    tgt_x_.reset();
    tgt_y_.reset();
    tgt_z_.reset();
    tgt_grids_.reset();
    tgt_hat_.reset();
    return;
  }
  // Update-device of array sections: only the moved target coordinate
  // ranges cross PCIe, keeping the resident plan coherent for the next
  // evaluate with fresh_targets == false.
  std::size_t moved_doubles = 0;
  for (const auto& range : moved_ranges) {
    const auto b = static_cast<std::ptrdiff_t>(range.first);
    const auto e = static_cast<std::ptrdiff_t>(range.second);
    std::copy(tgt.x.begin() + b, tgt.x.begin() + e, tgt_x_->span().begin() + b);
    std::copy(tgt.y.begin() + b, tgt.y.begin() + e, tgt_y_->span().begin() + b);
    std::copy(tgt.z.begin() + b, tgt.z.begin() + e, tgt_z_->span().begin() + b);
    moved_doubles += range.second - range.first;
  }
  device_.host_to_device(3 * moved_doubles * sizeof(double));
}

void GpuSimEngine::refresh_let_positions(std::span<const LetPiece> pieces,
                                         const TreecodeParams& /*params*/) {
  failpoint(failpoints::sites::kGpuPartialRestage);
  if (pieces.size() != let_.size()) {
    throw std::logic_error(
        "GpuSimEngine::refresh_let_positions: refresh with a different "
        "piece count");
  }
  // The piece set, trees, and fetched ranges are unchanged; the caller
  // refreshed coordinates, charges, and modified charges in place. Restage
  // the fetched particle data (coordinates + charges) and the charge
  // arrays; grids and tree geometry stay resident.
  for (LetDeviceState& state : let_) {
    const OrderedParticles& p = *state.piece.plan.particles;
    std::copy(p.x.begin(), p.x.end(), state.sx->span().begin());
    std::copy(p.y.begin(), p.y.end(), state.sy->span().begin());
    std::copy(p.z.begin(), p.z.end(), state.sz->span().begin());
    std::copy(p.q.begin(), p.q.end(), state.sq->span().begin());
    device_.host_to_device(4 * state.piece.fetched_particles *
                           sizeof(double));
    state.qhat->upload(state.piece.plan.moments->all_qhat());
  }
}

void GpuSimEngine::stage_piece_particles(LetDeviceState& state,
                                         bool charges_only) {
  failpoint(failpoints::sites::kGpuStage);
  const OrderedParticles& p = *state.piece.plan.particles;
  if (!charges_only) {
    // Allocate full-size device arrays (OpenACC `create`), then model the
    // packed upload of the fetched subset: the placeholders outside the
    // fetched ranges are never referenced by the lists and a real
    // implementation would not move them over PCIe.
    state.sx = std::make_unique<Buffer>(device_, p.size());
    state.sy = std::make_unique<Buffer>(device_, p.size());
    state.sz = std::make_unique<Buffer>(device_, p.size());
    state.sq = std::make_unique<Buffer>(device_, p.size());
    std::copy(p.x.begin(), p.x.end(), state.sx->span().begin());
    std::copy(p.y.begin(), p.y.end(), state.sy->span().begin());
    std::copy(p.z.begin(), p.z.end(), state.sz->span().begin());
    device_.host_to_device(3 * state.piece.fetched_particles *
                           sizeof(double));
  }
  // Charges restage on every refresh; coordinates stay resident.
  std::copy(p.q.begin(), p.q.end(), state.sq->span().begin());
  device_.host_to_device(state.piece.fetched_particles * sizeof(double));
}

void GpuSimEngine::attach_let_pieces(std::span<const LetPiece> pieces,
                                     const TreecodeParams& /*params*/,
                                     bool charges_only) {
  if (charges_only) {
    if (pieces.size() != let_.size()) {
      throw std::logic_error(
          "GpuSimEngine::attach_let_pieces: charges_only refresh with a "
          "different piece count");
    }
    // Update-device of the refreshed charge data alone: modified charges of
    // every LET cluster plus the fetched direct-range particle charges.
    for (LetDeviceState& state : let_) {
      state.qhat->upload(state.piece.plan.moments->all_qhat());
      stage_piece_particles(state, /*charges_only=*/true);
    }
    return;
  }
  let_.clear();
  let_.reserve(pieces.size());
  for (const LetPiece& piece : pieces) {
    LetDeviceState state;
    state.piece = piece;
    stage_piece_particles(state, /*charges_only=*/false);
    // HtD: the piece's cluster data — grids recomputed locally from the
    // remote boxes plus the fetched modified charges (the LET's device
    // footprint, §3.1-3.2).
    state.grids =
        std::make_unique<Buffer>(device_, piece.plan.moments->all_grids());
    state.qhat =
        std::make_unique<Buffer>(device_, piece.plan.moments->all_qhat());
    // LET assembly is host-side setup work, like the local tree/list build.
    pending_host_setup_particles_ += piece.fetched_particles;
    let_.push_back(std::move(state));
  }
}

std::vector<double> GpuSimEngine::evaluate_potential(
    const SourcePlan& sources, const TargetPlan& targets,
    const KernelSpec& kernel, bool fresh_targets, RunStats& stats,
    ExecContext* /*ctx*/) const {
  // One simulated device executes one evaluation at a time: concurrent
  // callers (the serving layer) serialize here rather than corrupting the
  // staged target buffers or the delta-reported device counters.
  std::lock_guard<std::mutex> lock(eval_mutex_);
  if (targets.per_target_mac) {
    throw std::invalid_argument(
        "per_target_mac is a CPU-backend ablation; the GPU engine batches "
        "by construction");
  }
  const bool dual = targets.traversal == TraversalMode::kDual;
  const std::size_t npieces =
      dual ? targets.dual_lists.size() : targets.lists.size();
  if (npieces != 1 + let_.size()) {
    throw std::logic_error(
        "GpuSimEngine::evaluate_potential: one interaction list per source "
        "piece expected");
  }
  if (dual && !let_.empty()) {
    throw std::invalid_argument(
        "GpuSimEngine: dual-traversal evaluation of attached LET pieces is "
        "not supported (DistSolver rejects TraversalMode::kDual)");
  }
  const OrderedParticles& tgt = *targets.particles;
  if (fresh_targets || tgt_x_ == nullptr) {
    // Injected before the first buffer replacement: a tripped target
    // staging keeps the previously staged targets whole, and the retry
    // re-runs the full staging block.
    failpoint(failpoints::sites::kGpuStage);
    // HtD: target coordinates, only when the target plan changed.
    tgt_x_ = std::make_unique<Buffer>(device_, std::span<const double>(tgt.x));
    tgt_y_ = std::make_unique<Buffer>(device_, std::span<const double>(tgt.y));
    tgt_z_ = std::make_unique<Buffer>(device_, std::span<const double>(tgt.z));
    pending_host_setup_particles_ += tgt.size();
    // Dual traversal: the target cluster grids (every ladder level) ride
    // along with the targets (HtD once per target plan); the per-node grid
    // potentials are a device-side allocation the CC/CP kernels accumulate
    // into.
    if (dual) {
      std::size_t grid_doubles = 0, hat_doubles = 0;
      for (const ClusterMoments& g : targets.grids) {
        grid_doubles += g.all_grids().size();
        hat_doubles += g.num_clusters() * g.points_per_cluster();
      }
      tgt_grids_ = std::make_unique<Buffer>(device_, grid_doubles);
      device_.host_to_device(grid_doubles * sizeof(double));
      tgt_hat_ = std::make_unique<Buffer>(device_, hat_doubles);
    } else {
      tgt_grids_.reset();
      tgt_hat_.reset();
    }
  }
  // Periodic boundaries: the shared lattice shift table rides to the device
  // once per engine lifetime (it depends only on the solver's domain/shell
  // configuration). This one upload is the entire extra device footprint of
  // the image sum — sources, grids, and modified charges stay shared.
  if (targets.shifts != nullptr && shift_table_ == nullptr) {
    const std::vector<double> flat = targets.shifts->flattened();
    shift_table_ =
        std::make_unique<Buffer>(device_, std::span<const double>(flat));
  }

  const gpusim::TimeMarker before = device_.marker();
  EngineCounters counters;
  std::vector<double> phi;
  if (dual) {
    phi = gpu_evaluate_dual_device_resident(
        device_, tgt, *targets.tree, targets.grids, targets.dual_lists[0],
        *sources.tree, *sources.particles, dual_moments_, kernel, &counters,
        targets.shifts);
  } else {
    // Local piece first, then the attached LET pieces in piece order (fixed
    // accumulation order keeps the result deterministic and backend-
    // independent).
    phi = gpu_evaluate_device_resident(
        device_, tgt, *targets.batches, targets.lists[0], *sources.tree,
        *sources.particles, moments_, kernel, &counters, targets.shifts);
    for (std::size_t p = 0; p < let_.size(); ++p) {
      const LetPiece& piece = let_[p].piece;
      EngineCounters piece_counters;
      add_into(phi, gpu_evaluate_device_resident(
                        device_, tgt, *targets.batches, targets.lists[1 + p],
                        *piece.plan.tree, *piece.plan.particles,
                        *piece.plan.moments, kernel, &piece_counters));
      accumulate_counters(counters, piece_counters);
    }
  }
  // DtH: final potentials (every evaluation downloads its results).
  device_.device_to_host(phi.size() * sizeof(double));
  const gpusim::TimeMarker after = device_.marker();

  stats.approx_evals = counters.approx_evals;
  stats.direct_evals = counters.direct_evals;
  stats.approx_launches = counters.approx_launches;
  stats.direct_launches = counters.direct_launches;
  stats.cp_evals = counters.cp_evals;
  stats.cc_evals = counters.cc_evals;
  stats.cp_launches = counters.cp_launches;
  stats.cc_launches = counters.cc_launches;
  stats.fp32_evals = counters.fp32_evals;
  stats.fp64_evals = counters.fp64_evals;

  // Modeled times on the paper's hardware: host-side setup work plus all
  // PCIe transfers since the last report are attributed to the setup phase
  // (the paper's setup includes data movement); kernel time splits by phase.
  stats.modeled.setup =
      gpusim::host_setup_seconds(options_.host,
                                 pending_host_setup_particles_) +
      (after.transfer_seconds - reported_marker_.transfer_seconds);
  stats.modeled.precompute = pending_modeled_precompute_;
  stats.modeled.compute = after.kernel_seconds - before.kernel_seconds;
  pending_modeled_precompute_ = 0.0;
  pending_host_setup_particles_ = 0;

  // Device counters are cumulative; report deltas for this evaluation.
  stats.gpu_launches = device_.launches() - reported_launches_;
  stats.bytes_to_device = device_.bytes_to_device() - reported_bytes_htd_;
  stats.bytes_to_host = device_.bytes_to_host() - reported_bytes_dth_;
  reported_marker_ = after;
  reported_launches_ = device_.launches();
  reported_bytes_htd_ = device_.bytes_to_device();
  reported_bytes_dth_ = device_.bytes_to_host();
  return phi;
}

FieldResult GpuSimEngine::evaluate_field(const SourcePlan& /*sources*/,
                                         const TargetPlan& /*targets*/,
                                         const KernelSpec& /*kernel*/,
                                         bool /*fresh_targets*/,
                                         RunStats& /*stats*/,
                                         ExecContext* /*ctx*/) const {
  throw std::invalid_argument(
      "field evaluation is implemented on the CPU engine only; use "
      "Backend::kCpu");
}

void GpuSimEngine::mesh_far_field(const mesh::MeshPlan& plan,
                                  const TargetPlan& targets,
                                  std::vector<double>& phi, FieldResult* field,
                                  RunStats& stats) const {
  std::scoped_lock lock(eval_mutex_);
  const mesh::MeshTuning& tuning = plan.tuning();
  const double grid = static_cast<double>(plan.grid_points());
  const double p3 = static_cast<double>(tuning.order) *
                    static_cast<double>(tuning.order) *
                    static_cast<double>(tuning.order);
  const gpusim::TimeMarker before = device_.marker();

  if (plan.version() != mesh_version_staged_) {
    // Stage + solve the device-resident mesh for this source version:
    // charge spreading (one block per 128 sources, p^3 scattered grid
    // accumulations each), one batched-pencil launch per FFT dimension for
    // the forward and inverse transforms, and the k-space Green multiply
    // over the half spectrum. The solved grid then stays device-resident
    // until the sources change again.
    const double nsrc = static_cast<double>(plan.num_sources());
    {
      gpusim::KernelCost cost;
      cost.evals = nsrc * p3;
      cost.blocks = (plan.num_sources() + 127) / 128;
      device_.launch(device_.next_stream(), cost, [] {});
    }
    const int dims[3] = {tuning.nx, tuning.ny, tuning.nz};
    for (int pass = 0; pass < 2; ++pass) {  // forward, then inverse
      for (int d = 0; d < 3; ++d) {
        gpusim::KernelCost cost;
        cost.evals = grid * std::log2(static_cast<double>(dims[d]));
        cost.blocks = static_cast<std::size_t>(grid) /
                          static_cast<std::size_t>(dims[d]) +
                      1;  // one block per pencil
        device_.launch(device_.next_stream(), cost, [] {});
      }
      if (pass == 0) {
        gpusim::KernelCost cost;
        cost.evals = grid / 2.0;  // Hermitian half spectrum
        cost.blocks = static_cast<std::size_t>(grid / 2.0) / 256 + 1;
        device_.launch(device_.next_stream(), cost, [] {});
      }
    }
    mesh_version_staged_ = plan.version();
  }
  const gpusim::TimeMarker solved = device_.marker();

  // Per-call interpolation: one block per 128 targets, p^3 grid reads per
  // target (4x the accumulation work with analytic-gradient forces), then
  // the far-field results come down over PCIe. The launch body performs the
  // actual numerics — the simulated device computes bit-identical values to
  // the host gather.
  const std::size_t nt = targets.particles->size();
  {
    gpusim::KernelCost cost;
    cost.evals = static_cast<double>(nt) * p3 * (field != nullptr ? 4.0 : 1.0);
    cost.blocks = nt / 128 + 1;
    device_.launch(device_.next_stream(), cost, [&] {
      if (field != nullptr) {
        plan.add_field(*targets.particles, *field);
      } else {
        plan.add_potential(*targets.particles, phi);
      }
    });
  }
  device_.device_to_host(nt * sizeof(double) * (field != nullptr ? 4 : 1));
  const gpusim::TimeMarker after = device_.marker();

  // The solver has already harvested the host plan's spread/solve seconds;
  // attribute the modeled device pipeline on top: solve launches to the FFT
  // phase, interpolation to the spread/gather phase. Device counters are
  // cumulative, so extend this evaluation's deltas and refresh the
  // snapshots (mesh_far_field always runs after evaluate_potential reported
  // its own slice).
  stats.fft_seconds += solved.kernel_seconds - before.kernel_seconds;
  stats.mesh_spread_seconds += after.kernel_seconds - solved.kernel_seconds;
  stats.mesh_points = plan.grid_points();
  stats.modeled.compute += after.kernel_seconds - before.kernel_seconds;
  stats.modeled.setup += after.transfer_seconds - before.transfer_seconds;
  stats.gpu_launches += device_.launches() - reported_launches_;
  stats.bytes_to_device += device_.bytes_to_device() - reported_bytes_htd_;
  stats.bytes_to_host += device_.bytes_to_host() - reported_bytes_dth_;
  reported_marker_ = after;
  reported_launches_ = device_.launches();
  reported_bytes_htd_ = device_.bytes_to_device();
  reported_bytes_dth_ = device_.bytes_to_host();
}

}  // namespace bltc
