#include "core/chebyshev.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bltc {

std::vector<double> chebyshev2_points(int degree) {
  if (degree < 0) throw std::invalid_argument("chebyshev2_points: degree < 0");
  std::vector<double> s(static_cast<std::size_t>(degree) + 1);
  if (degree == 0) {
    s[0] = 0.0;  // single-point rule: interval midpoint
    return s;
  }
  for (int k = 0; k <= degree; ++k) {
    s[static_cast<std::size_t>(k)] =
        std::cos(std::numbers::pi * static_cast<double>(k) /
                 static_cast<double>(degree));
  }
  return s;
}

std::vector<double> chebyshev2_points(int degree, double a, double b) {
  std::vector<double> s(static_cast<std::size_t>(degree) + 1);
  chebyshev2_points_into(degree, a, b, s);
  return s;
}

void chebyshev2_points_into(int degree, double a, double b,
                            std::span<double> out) {
  if (degree < 0) throw std::invalid_argument("chebyshev2_points: degree < 0");
  const double mid = 0.5 * (a + b);
  const double half = 0.5 * (b - a);
  if (degree == 0) {
    out[0] = mid;
    return;
  }
  for (int k = 0; k <= degree; ++k) {
    const double t = std::cos(std::numbers::pi * static_cast<double>(k) /
                              static_cast<double>(degree));
    out[static_cast<std::size_t>(k)] = mid + half * t;
  }
}

std::vector<double> chebyshev2_weights(int degree) {
  if (degree < 0)
    throw std::invalid_argument("chebyshev2_weights: degree < 0");
  std::vector<double> w(static_cast<std::size_t>(degree) + 1);
  if (degree == 0) {
    w[0] = 1.0;
    return w;
  }
  for (int k = 0; k <= degree; ++k) {
    const double delta = (k == 0 || k == degree) ? 0.5 : 1.0;
    w[static_cast<std::size_t>(k)] = (k % 2 == 0) ? delta : -delta;
  }
  return w;
}

std::vector<double> barycentric_weights_generic(std::span<const double> pts) {
  const std::size_t n = pts.size();
  std::vector<double> w(n, 1.0);
  for (std::size_t k = 0; k < n; ++k) {
    double prod = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != k) prod *= pts[k] - pts[j];
    }
    w[k] = 1.0 / prod;
  }
  return w;
}

}  // namespace bltc
