// Per-interaction mixed-precision execution (§5 future work, made real).
//
// Precision is selected the same way the dual traversal selects its moment
// ladder level: per interaction, against the nominal (theta, n) error
// target. An admitted far-field interaction with opening ratio
// kappa = (r_B + r_C)/R < theta carries a truncation error bounded by
// kappa^(d+1)/(1-kappa); executing its tile in fp32 adds a representation/
// accumulation floor of order a few float ulps. Under kMixed the tile runs
// fp32 exactly when truncation + fp32 floor still meets the nominal bound
// theta^(n+1)/(1-theta) — so mixed precision never costs accuracy the user
// did not already concede to the treecode itself. Direct (leaf-leaf) tiles
// always stay fp64: they carry no truncation budget to hide the float
// floor in, and they contain the near-singular pairs.
//
// The fp32 tiles read float mirrors of the hot source-side streams — the
// `Fp32Shadow` below: ordered particles, every ladder level's modified
// charges q̂, and the Chebyshev grids. Engines build the shadow at prepare
// time and patch it with exactly the dirty sets `update_charges`/
// `update_positions` already produce, so the incremental path keeps its
// amortized-O(moved) cost. Accumulation is always fp64.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "core/moments.hpp"
#include "core/particles.hpp"

namespace bltc {

/// Execution precision of far-field tiles. Direct tiles are fp64 under
/// every policy.
enum class PrecisionPolicy {
  kFp64,    ///< everything fp64 (bit-identical to the pre-policy behavior)
  kMixed,   ///< fp32 where the error ladder proves the nominal bound holds
  kFp32Far, ///< every admitted far-field tile fp32 (frontier exploration)
};

/// Human-readable policy name ("fp64" | "mixed" | "fp32far").
const char* precision_policy_name(PrecisionPolicy policy);

/// Conservative relative error contributed by one fp32 tile: float inputs
/// (~1.2e-7 ulp) amplified by blocked accumulation before each fp64 flush.
inline constexpr double kFp32TileError = 1e-6;

/// Classical a-priori far-field bound at (theta, degree):
/// theta^(degree+1) / (1 - theta).
inline double nominal_error_bound(double theta, int degree) {
  return std::pow(theta, degree + 1) / (1.0 - theta);
}

/// Whether one admitted far-field interaction may execute fp32: its own
/// truncation bound at the degree it will actually run, plus the fp32 tile
/// floor, must still meet the nominal (theta, nominal_degree) target.
/// `kappa` is the interaction's opening ratio (< theta by admission).
inline bool fp32_admissible(PrecisionPolicy policy, double kappa,
                            int used_degree, double theta,
                            int nominal_degree) {
  switch (policy) {
    case PrecisionPolicy::kFp64:
      return false;
    case PrecisionPolicy::kFp32Far:
      return true;
    case PrecisionPolicy::kMixed:
      break;
  }
  const double truncation =
      std::pow(kappa, used_degree + 1) / (1.0 - kappa);
  return truncation + kFp32TileError <= nominal_error_bound(theta,
                                                            nominal_degree);
}

/// Float mirrors of the source-side streams the fp32 tiles read: ordered
/// particles plus, per moment-ladder level ([0] is the nominal degree), the
/// flattened modified charges and Chebyshev grids in the ClusterMoments
/// layouts. Owned by the engine (or by a cached serve plan) and patched in
/// lock-step with the fp64 masters; an empty shadow means "execute fp64".
struct Fp32Shadow {
  std::vector<float> x, y, z, q;           ///< ordered particles
  std::vector<std::vector<float>> qhat;    ///< per level, all_qhat layout
  std::vector<std::vector<float>> grids;   ///< per level, all_grids layout

  bool empty() const { return x.empty(); }
  void clear();

  /// Build from the ordered particles and the moment ladder ([0] nominal;
  /// a single-element span is the batched traversal's one level).
  static Fp32Shadow build(const OrderedParticles& particles,
                          std::span<const ClusterMoments> levels);

  /// Charges-only refresh: re-mirror q and every level's q̂ (grids depend
  /// only on the tree geometry and are untouched).
  void refresh_charges(const OrderedParticles& particles,
                       std::span<const ClusterMoments> levels);

  /// Incremental position patch: re-mirror exactly the rewritten particle
  /// slots (half-open tree-order ranges) and the dirty clusters' q̂ per
  /// level — the same dirty sets the fp64 masters were patched with, so the
  /// cost stays O(moved).
  void patch_positions(
      const OrderedParticles& particles,
      std::span<const std::pair<std::size_t, std::size_t>> moved_ranges,
      std::span<const std::size_t> dirty_clusters,
      std::span<const ClusterMoments> levels);
};

}  // namespace bltc
