// O(N^2) direct summation, Eq. (1) — the accuracy reference and the baseline
// the paper compares against. Self-interactions (r = 0) are skipped for
// kernels singular at the origin, the standard treecode convention.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/kernels.hpp"
#include "util/box.hpp"
#include "util/workloads.hpp"

namespace bltc {

/// Potential at every target due to all sources (OpenMP over targets).
std::vector<double> direct_sum(const Cloud& targets, const Cloud& sources,
                               const KernelSpec& kernel);

/// Potential at the sampled targets only — the paper samples the reference
/// for systems with >= 8M particles. Returns one value per sample entry.
std::vector<double> direct_sum_sampled(const Cloud& targets,
                                       std::span<const std::size_t> sample,
                                       const Cloud& sources,
                                       const KernelSpec& kernel);

/// Well-converged classical Ewald sum for the periodic *Coulomb* potential:
/// the oracle for BoundaryConditions::kPeriodicMesh. Semantics (shared with
/// src/mesh): tinfoil boundary at infinity, and for non-neutral systems the
/// uniform-background convention (the k = 0 term is dropped and the
/// -pi Q_tot / (alpha^2 V) background correction added), so the result is
/// well defined for any charge distribution. Coincident target/source points
/// contribute nothing (the treecode's singular-skip convention; a particle
/// still interacts with all of its images). `alpha` <= 0 picks a
/// convergence-safe default from the domain; any alpha > 0 changes only
/// roundoff, not the converged value.
std::vector<double> direct_sum_ewald(const Cloud& targets,
                                     const Cloud& sources, const Box3& domain,
                                     double alpha = 0.0);

/// Ewald potential at the sampled targets only.
std::vector<double> direct_sum_ewald_sampled(const Cloud& targets,
                                             std::span<const std::size_t> sample,
                                             const Cloud& sources,
                                             const Box3& domain,
                                             double alpha = 0.0);

}  // namespace bltc
