// O(N^2) direct summation, Eq. (1) — the accuracy reference and the baseline
// the paper compares against. Self-interactions (r = 0) are skipped for
// kernels singular at the origin, the standard treecode convention.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/kernels.hpp"
#include "util/workloads.hpp"

namespace bltc {

/// Potential at every target due to all sources (OpenMP over targets).
std::vector<double> direct_sum(const Cloud& targets, const Cloud& sources,
                               const KernelSpec& kernel);

/// Potential at the sampled targets only — the paper samples the reference
/// for systems with >= 8M particles. Returns one value per sample entry.
std::vector<double> direct_sum_sampled(const Cloud& targets,
                                       std::span<const std::size_t> sample,
                                       const Cloud& sources,
                                       const KernelSpec& kernel);

}  // namespace bltc
