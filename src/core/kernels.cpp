#include "core/kernels.hpp"

namespace bltc {

std::string KernelSpec::name() const {
  switch (type) {
    case KernelType::kCoulomb:
      return "coulomb";
    case KernelType::kYukawa:
      return "yukawa(kappa=" + std::to_string(kappa) + ")";
    case KernelType::kGaussian:
      return "gaussian(kappa=" + std::to_string(kappa) + ")";
    case KernelType::kMultiquadric:
      return "multiquadric(c=" + std::to_string(kappa) + ")";
    case KernelType::kInverseSquare:
      return "inverse_square";
    case KernelType::kCoulombErfc:
      return "coulomb_erfc(alpha=" + std::to_string(kappa) + ")";
  }
  return "unknown";
}

double evaluate_kernel(const KernelSpec& spec, double x1, double x2, double x3,
                       double y1, double y2, double y3) {
  const double d1 = x1 - y1;
  const double d2 = x2 - y2;
  const double d3 = x3 - y3;
  const double r2 = d1 * d1 + d2 * d2 + d3 * d3;
  if (r2 == 0.0 && spec.singular_at_origin()) return 0.0;
  return with_kernel(spec, [r2](auto k) { return k(r2); });
}

}  // namespace bltc
