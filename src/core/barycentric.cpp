#include "core/barycentric.hpp"

#include <cmath>

namespace bltc {

int barycentric_basis(std::span<const double> pts, std::span<const double> wts,
                      double t, std::span<double> out) {
  const std::size_t m = pts.size();
  int hit = -1;
  double denom = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    const double d = t - pts[k];
    if (std::fabs(d) <= kSingularityTol) {
      hit = static_cast<int>(k);
      break;
    }
    const double term = wts[k] / d;
    out[k] = term;
    denom += term;
  }
  if (hit >= 0) {
    for (std::size_t k = 0; k < m; ++k) out[k] = 0.0;
    out[static_cast<std::size_t>(hit)] = 1.0;
    return hit;
  }
  const double inv = 1.0 / denom;
  for (std::size_t k = 0; k < m; ++k) out[k] *= inv;
  return -1;
}

double barycentric_interpolate(std::span<const double> pts,
                               std::span<const double> wts,
                               std::span<const double> fvals, double t) {
  const std::size_t m = pts.size();
  double num = 0.0;
  double den = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    const double d = t - pts[k];
    if (std::fabs(d) <= kSingularityTol) return fvals[k];
    const double term = wts[k] / d;
    num += term * fvals[k];
    den += term;
  }
  return num / den;
}

Denominator barycentric_denominator(std::span<const double> pts,
                                    std::span<const double> wts, double t) {
  Denominator result;
  const std::size_t m = pts.size();
  for (std::size_t k = 0; k < m; ++k) {
    const double d = t - pts[k];
    if (std::fabs(d) <= kSingularityTol) {
      result.hit = static_cast<int>(k);
      return result;
    }
    result.value += wts[k] / d;
  }
  return result;
}

}  // namespace bltc
