// Treecode variants beyond the paper's particle-cluster (PC) scheme — §5
// lists "GPU acceleration of barycentric cluster-particle and
// cluster-cluster treecodes" as future work; this module implements both on
// the same substrates (references [30]-[32] of the paper).
//
//   * Cluster-particle (CP): interpolation on the *target* side. Potentials
//     due to well-separated sources are accumulated at the target cluster's
//     Chebyshev points and interpolated down to the particles afterwards.
//   * Cluster-cluster (CC, a barycentric dual tree traversal): both sides
//     interpolated — source modified charges q̂ interact with target grid
//     points, giving O(N) -like work for large well-separated regions.
//
// The CC traversal degrades gracefully: when the target cluster is too
// small it falls back to a PC interaction, when the source cluster is too
// small to a CP interaction, and to direct summation when both are small —
// the same size logic as Eq. (13).
//
// This module is the one-shot *reference* implementation. The production
// path is `TraversalMode::kDual` (core/plan.hpp): the same interaction
// kinds integrated into the plan/execute pipeline with list pre-grouping,
// variable interpolation order, and the symmetric self mode, executed by
// both engines through the blocked kernel core.
#pragma once

#include <vector>

#include "core/kernels.hpp"
#include "core/solver.hpp"
#include "util/workloads.hpp"

namespace bltc {

/// Which approximation scheme the solver uses.
enum class TreecodeVariant {
  kParticleCluster,  ///< the paper's BLTC (source-side interpolation)
  kClusterParticle,  ///< target-side interpolation
  kClusterCluster,   ///< both sides (dual tree traversal)
};

/// Interaction-type counters for the variant engines.
struct VariantStats {
  std::size_t pc_interactions = 0;  ///< particle-cluster approximations
  std::size_t cp_interactions = 0;  ///< cluster-particle approximations
  std::size_t cc_interactions = 0;  ///< cluster-cluster approximations
  std::size_t direct_interactions = 0;
  double kernel_evals = 0.0;  ///< total G evaluations (all interaction types)
};

/// Compute potentials with the selected treecode variant. Uses the same
/// trees, moments, and MAC machinery as the main solver; results are in the
/// caller's target order.
std::vector<double> compute_potential_variant(const Cloud& targets,
                                              const Cloud& sources,
                                              const KernelSpec& kernel,
                                              const TreecodeParams& params,
                                              TreecodeVariant variant,
                                              VariantStats* stats = nullptr);

}  // namespace bltc
