// Blocked CPU evaluation core — the one kernel that serves every host path.
//
// The paper's point (§3) is that batching targets against clusters turns
// both hot loops — the direct sum (Eq. 9) and the barycentric approximation
// (Eq. 11) — into the *same* high-intensity shape: a block of targets
// against a contiguous stream of weighted source points (real particles for
// Eq. 9, tensor-product Chebyshev points with modified charges for Eq. 11).
// This header exploits that on the host:
//
//   * `accumulate_tile` keeps a tile of `kTargetTile` targets' accumulators
//     (phi, and for fields ex/ey/ez) in registers and streams the source
//     block through a `#pragma omp simd` inner loop, one SIMD lane per
//     target. The singular-kernel guard is a branchless select
//     (kernel_value_masked / grad_value_masked) so the loop if-converts.
//   * A single-target variant vectorizes across *sources* with a simd
//     reduction instead — the shape the per-target MAC ablation needs.
//   * `TileSimd` is a hook for hand-tuned ISA-specific tiles; with AVX-512
//     the Coulomb kernel replaces vsqrt+vdiv with vrsqrt14pd refined by two
//     Newton iterations (relative error ~1e-16, far below the treecode's
//     interpolation error). The exact portable path remains the reference
//     (`Fast = false`), and the O(N^2) oracles in direct_sum.cpp stay on
//     their original scalar form so their results are bit-stable.
//
// One templated driver (`cpu_kernels.cpp`) executes interaction lists
// through these tiles for all four host paths: {potential, field} x
// {batched MAC, per-target MAC}. Per-cluster grids are expanded once per
// (list, cluster) visit into per-thread scratch that persists across
// evaluations (owned by CpuEngine), and lists are executed largest-first
// under guided scheduling so the parallel tail is made of cheap lists.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "core/fields.hpp"
#include "core/interaction_lists.hpp"
#include "core/kernels.hpp"
#include "core/moments.hpp"
#include "core/particles.hpp"
#include "core/precision.hpp"
#include "core/tree.hpp"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace bltc {

/// Targets per tile: accumulators for one tile live in registers for the
/// whole source stream (16 doubles = two AVX-512 registers, four NEON/SSE).
inline constexpr std::size_t kTargetTile = 16;

/// fp32 tiles flush their float accumulators into fp64 every this many
/// sources, bounding the single-precision summation error to O(interval *
/// eps32) per flush block independent of the stream length — the "accumulate
/// into fp64" half of the mixed-precision contract.
inline constexpr std::size_t kF32FlushInterval = 128;

/// Per-thread scratch: one cluster's Chebyshev grid expanded to contiguous
/// point streams (coordinates + modified charges), reused across clusters,
/// lists, and evaluate() calls. `cached_cluster` skips re-expansion when
/// consecutive lists on one thread visit the same cluster (the common case
/// under the per-target MAC, where a list holds a single target); it is
/// only valid within one evaluation — the driver invalidates it on entry
/// because the modified charges can change between calls.
struct CpuScratch {
  AlignedVector px, py, pz, pq;
  int cached_cluster = -1;
  int cached_cluster_level = 0;  ///< ladder level of the cached expansion
  int cached_cluster_shift = 0;  ///< lattice shift id of the cached expansion

  /// fp32 mirror of the expanded cluster stream, staged from an Fp32Shadow
  /// for tiles tagged fp32-eligible. Separate cache key: one thread can
  /// alternate between fp64 and fp32 expansions of different clusters.
  std::vector<float> fpx, fpy, fpz, fpq;
  int fcached_cluster = -1;
  int fcached_cluster_level = 0;
  int fcached_cluster_shift = 0;

  /// fp32 staging for lattice-shifted direct-range images (the fp32 twin of
  /// `ssx`/`ssy`/`ssz` below).
  std::vector<float> fssx, fssy, fssz;

  void ensure_f32(std::size_t n) {
    if (fpx.size() < n) {
      fpx.resize(n);
      fpy.resize(n);
      fpz.resize(n);
      fpq.resize(n);
    }
  }

  void ensure_shifted_sources_f32(std::size_t n) {
    if (fssx.size() < n) {
      fssx.resize(n);
      fssy.resize(n);
      fssz.resize(n);
    }
  }

  /// Periodic boundaries: a direct-range image is the source particle
  /// stream with a lattice shift added to the coordinates (charges pass
  /// through untouched). Staged here per (list, cluster, shift) visit; the
  /// home cell keeps streaming the raw source arrays.
  AlignedVector ssx, ssy, ssz;

  /// Dual traversal: one *target* node's Chebyshev grid expanded to
  /// contiguous point streams (the "targets" of CP/CC tile calls).
  AlignedVector tgx, tgy, tgz;
  int cached_target = -1;
  int cached_target_level = 0;

  /// Self-mode dual traversal: per-thread mirror accumulators for the
  /// source-side writes of symmetric direct pairs (the mirror leaf belongs
  /// to another thread's group, so it cannot be written directly). Reduced
  /// into the output arrays after the leaf phase.
  AlignedVector mphi, mex, mey, mez;

  void ensure_mirror(std::size_t n, bool field) {
    mphi.assign(n, 0.0);
    if (field) {
      mex.assign(n, 0.0);
      mey.assign(n, 0.0);
      mez.assign(n, 0.0);
    }
  }

  void ensure(std::size_t n) {
    if (px.size() < n) {
      px.resize(n);
      py.resize(n);
      pz.resize(n);
      pq.resize(n);
    }
  }

  void ensure_shifted_sources(std::size_t n) {
    if (ssx.size() < n) {
      ssx.resize(n);
      ssy.resize(n);
      ssz.resize(n);
    }
  }

  void ensure_target(std::size_t n) {
    if (tgx.size() < n) {
      tgx.resize(n);
      tgy.resize(n);
      tgz.resize(n);
    }
  }
};

/// Host evaluation workspace. `CpuEngine` keeps one alive across
/// `Solver::evaluate` calls so repeated evaluations allocate nothing; the
/// free evaluator functions fall back to a call-local instance.
class CpuWorkspace {
 public:
  /// Size the per-thread scratch table and invalidate the per-thread
  /// expansion caches; call from serial code before a parallel region
  /// indexes it.
  void ensure_threads();

  /// Calling thread's scratch entry (valid inside the parallel region).
  CpuScratch& scratch();

  /// Scratch-table iteration (mirror-buffer setup and reduction).
  std::size_t num_scratch() const { return per_thread_.size(); }
  CpuScratch& scratch_at(std::size_t i) { return per_thread_[i]; }

  std::vector<std::size_t>& order() { return order_; }
  std::vector<double>& cost() { return cost_; }

  /// Dual-traversal accumulators: per-target-node grid potentials (and, for
  /// field runs, grid fields), zeroed at the start of every dual evaluation
  /// but allocated once. `flag[n]` marks nodes whose grid holds data.
  struct DualHats {
    AlignedVector phi, ex, ey, ez;
    std::vector<unsigned char> flag;
  };
  DualHats& hats() { return hats_; }

 private:
  std::vector<CpuScratch> per_thread_;
  std::vector<std::size_t> order_;  ///< cost-sorted list execution order
  std::vector<double> cost_;        ///< per-list work estimate
  DualHats hats_;
};

/// ISA-specific tile kernels. The primary template reports "none"; opt-in
/// specializations provide `run(...)` for one (Field, kernel functor) pair
/// and are selected only on full tiles with `Fast = true` (treecode paths).
template <bool Field, typename K>
struct TileSimd {
  static constexpr bool kAvailable = false;
};

/// ISA-specific *mutual* tiles (symmetric self-mode direct interactions):
/// same contract as TileSimd plus the target charges and the source-side
/// mirror accumulators.
template <bool Field, typename K>
struct TileSimdMutual {
  static constexpr bool kAvailable = false;
};

/// ISA-specific fp32 tiles for tagged far-field interactions: float target
/// and source streams, fp64 output accumulators (the float partial sums are
/// widened every kF32FlushInterval sources). With AVX-512 the whole 16-
/// target tile fits one zmm register per accumulator — half the register
/// pressure and twice the lane count of the fp64 tile.
template <bool Field, typename K>
struct TileSimdF32 {
  static constexpr bool kAvailable = false;
};

#if defined(__AVX512F__)

namespace detail {

/// 1/sqrt(a) from vrsqrt14pd (relative error < 2^-14) refined by two
/// Newton-Raphson steps y <- y(3/2 - a y^2 / 2): error ~1e-16, no divider.
/// Lanes where a == 0 are zeroed by `ok`.
inline __m512d masked_rsqrt_nr2(__m512d a, __mmask8 ok) {
  const __m512d half = _mm512_set1_pd(0.5);
  const __m512d three_halves = _mm512_set1_pd(1.5);
  const __m512d ha = _mm512_mul_pd(half, a);
  __m512d y = _mm512_rsqrt14_pd(a);
  y = _mm512_mul_pd(
      y, _mm512_fnmadd_pd(_mm512_mul_pd(ha, y), y, three_halves));
  y = _mm512_mul_pd(
      y, _mm512_fnmadd_pd(_mm512_mul_pd(ha, y), y, three_halves));
  return _mm512_maskz_mov_pd(ok, y);
}

/// fp32 1/sqrt(a) from vrsqrt14ps (relative error < 2^-14) refined by one
/// Newton-Raphson step: error ~2^-28, below the fp32 representation error
/// of the tile inputs, so the refinement is free accuracy-wise and the
/// divider stays idle. Lanes where a == 0 are zeroed by `ok`.
inline __m512 masked_rsqrt_ps_nr1(__m512 a, __mmask16 ok) {
  const __m512 half = _mm512_set1_ps(0.5f);
  const __m512 three_halves = _mm512_set1_ps(1.5f);
  __m512 y = _mm512_rsqrt14_ps(a);
  y = _mm512_mul_ps(
      y, _mm512_fnmadd_ps(_mm512_mul_ps(_mm512_mul_ps(half, a), y), y,
                          three_halves));
  return _mm512_maskz_mov_ps(ok, y);
}

/// Widen a 16-float partial sum into the two fp64 accumulator registers
/// (the flush step of the fp32 tiles). The upper 256-bit extract goes
/// through a pd reinterpret so only AVX-512F is required.
inline void flush_ps_to_pd(__m512 v, __m512d& lo, __m512d& hi) {
  lo = _mm512_add_pd(lo, _mm512_cvtps_pd(_mm512_castps512_ps256(v)));
  hi = _mm512_add_pd(
      hi, _mm512_cvtps_pd(_mm256_castpd_ps(
              _mm512_extractf64x4_pd(_mm512_castps_pd(v), 1))));
}

/// Vector e^x: Cody-Waite range reduction against a split ln2 plus a
/// degree-6 polynomial on [-ln2/2, ln2/2], scaled by 2^n through the
/// exponent field. Inputs are clamped to +-700, so the scaling never
/// overflows; accuracy ~1e-13 relative across the clamp range.
inline __m512d exp_pd(__m512d x) {
  const __m512d log2e = _mm512_set1_pd(1.4426950408889634);
  const __m512d ln2_hi = _mm512_set1_pd(6.93147180369123816490e-1);
  const __m512d ln2_lo = _mm512_set1_pd(1.90821492927058770002e-10);
  x = _mm512_max_pd(_mm512_set1_pd(-700.0),
                    _mm512_min_pd(_mm512_set1_pd(700.0), x));
  const __m512d n = _mm512_roundscale_pd(
      _mm512_mul_pd(x, log2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m512d r = _mm512_fnmadd_pd(n, ln2_hi, x);
  r = _mm512_fnmadd_pd(n, ln2_lo, r);
  __m512d p = _mm512_set1_pd(1.0 / 5040.0);
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 720.0));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 120.0));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 24.0));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 6.0));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(0.5));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0));
  // 2^n via exponent bits: n is integral and |n| <= 1011 after the clamp,
  // so it fits epi32 (cvtpd_epi64 would need AVX-512DQ).
  const __m512i biased = _mm512_add_epi64(
      _mm512_cvtepi32_epi64(_mm512_cvtpd_epi32(n)), _mm512_set1_epi64(1023));
  const __m512d scale =
      _mm512_castsi512_pd(_mm512_slli_epi64(biased, 52));
  return _mm512_mul_pd(p, scale);
}

/// erfc(x) e^{-x^2} fused tile helper for x >= 0: Abramowitz-Stegun 7.1.26
/// (|abs err| < 1.5e-7, far below the kPeriodicMesh split tolerance) with
/// the Gaussian factor returned separately — the screened-force tile needs
/// both erfc(ar) and e^{-a^2 r^2} and they share one exp evaluation.
inline void erfc_gauss_pd(__m512d x, __m512d& erfc_out, __m512d& gauss_out) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d t =
      _mm512_div_pd(one, _mm512_fmadd_pd(_mm512_set1_pd(0.3275911), x, one));
  __m512d p = _mm512_set1_pd(1.061405429);
  p = _mm512_fmadd_pd(p, t, _mm512_set1_pd(-1.453152027));
  p = _mm512_fmadd_pd(p, t, _mm512_set1_pd(1.421413741));
  p = _mm512_fmadd_pd(p, t, _mm512_set1_pd(-0.284496736));
  p = _mm512_fmadd_pd(p, t, _mm512_set1_pd(0.254829592));
  const __m512d gauss =
      exp_pd(_mm512_sub_pd(_mm512_setzero_pd(), _mm512_mul_pd(x, x)));
  erfc_out = _mm512_mul_pd(_mm512_mul_pd(p, t), gauss);
  gauss_out = gauss;
}

}  // namespace detail

/// Coulomb potential tile: 16 targets in two zmm accumulator registers.
template <>
struct TileSimd<false, CoulombKernel> {
  static constexpr bool kAvailable = true;

  static void run(const double* tx, const double* ty, const double* tz,
                  const double* sx, const double* sy, const double* sz,
                  const double* sq, std::size_t ns, CoulombKernel,
                  double* phi, double*, double*, double*) {
    const __m512d zero = _mm512_setzero_pd();
    const __m512d tx0 = _mm512_loadu_pd(tx), tx1 = _mm512_loadu_pd(tx + 8);
    const __m512d ty0 = _mm512_loadu_pd(ty), ty1 = _mm512_loadu_pd(ty + 8);
    const __m512d tz0 = _mm512_loadu_pd(tz), tz1 = _mm512_loadu_pd(tz + 8);
    __m512d acc0 = zero, acc1 = zero;
    for (std::size_t j = 0; j < ns; ++j) {
      const __m512d xj = _mm512_set1_pd(sx[j]);
      const __m512d yj = _mm512_set1_pd(sy[j]);
      const __m512d zj = _mm512_set1_pd(sz[j]);
      const __m512d qj = _mm512_set1_pd(sq[j]);

      __m512d dx = _mm512_sub_pd(tx0, xj);
      __m512d dy = _mm512_sub_pd(ty0, yj);
      __m512d dz = _mm512_sub_pd(tz0, zj);
      __m512d r2 = _mm512_fmadd_pd(
          dx, dx, _mm512_fmadd_pd(dy, dy, _mm512_mul_pd(dz, dz)));
      acc0 = _mm512_fmadd_pd(
          detail::masked_rsqrt_nr2(r2,
                                   _mm512_cmp_pd_mask(r2, zero, _CMP_GT_OQ)),
          qj, acc0);

      dx = _mm512_sub_pd(tx1, xj);
      dy = _mm512_sub_pd(ty1, yj);
      dz = _mm512_sub_pd(tz1, zj);
      r2 = _mm512_fmadd_pd(
          dx, dx, _mm512_fmadd_pd(dy, dy, _mm512_mul_pd(dz, dz)));
      acc1 = _mm512_fmadd_pd(
          detail::masked_rsqrt_nr2(r2,
                                   _mm512_cmp_pd_mask(r2, zero, _CMP_GT_OQ)),
          qj, acc1);
    }
    _mm512_storeu_pd(phi, _mm512_add_pd(_mm512_loadu_pd(phi), acc0));
    _mm512_storeu_pd(phi + 8, _mm512_add_pd(_mm512_loadu_pd(phi + 8), acc1));
  }
};

/// Coulomb potential+field tile: slope = -1/r^3 = -(1/sqrt(r2))^3, so the
/// whole contribution is rsqrt-only — no divider at all.
template <>
struct TileSimd<true, CoulombGradKernel> {
  static constexpr bool kAvailable = true;

  static void run(const double* tx, const double* ty, const double* tz,
                  const double* sx, const double* sy, const double* sz,
                  const double* sq, std::size_t ns, CoulombGradKernel,
                  double* phi, double* ex, double* ey, double* ez) {
    const __m512d zero = _mm512_setzero_pd();
    const __m512d tx0 = _mm512_loadu_pd(tx), tx1 = _mm512_loadu_pd(tx + 8);
    const __m512d ty0 = _mm512_loadu_pd(ty), ty1 = _mm512_loadu_pd(ty + 8);
    const __m512d tz0 = _mm512_loadu_pd(tz), tz1 = _mm512_loadu_pd(tz + 8);
    __m512d p0 = zero, p1 = zero;
    __m512d x0 = zero, x1 = zero;
    __m512d y0 = zero, y1 = zero;
    __m512d z0 = zero, z1 = zero;
    for (std::size_t j = 0; j < ns; ++j) {
      const __m512d xj = _mm512_set1_pd(sx[j]);
      const __m512d yj = _mm512_set1_pd(sy[j]);
      const __m512d zj = _mm512_set1_pd(sz[j]);
      const __m512d qj = _mm512_set1_pd(sq[j]);

      __m512d dx = _mm512_sub_pd(tx0, xj);
      __m512d dy = _mm512_sub_pd(ty0, yj);
      __m512d dz = _mm512_sub_pd(tz0, zj);
      __m512d r2 = _mm512_fmadd_pd(
          dx, dx, _mm512_fmadd_pd(dy, dy, _mm512_mul_pd(dz, dz)));
      __m512d inv_r = detail::masked_rsqrt_nr2(
          r2, _mm512_cmp_pd_mask(r2, zero, _CMP_GT_OQ));
      __m512d w = _mm512_mul_pd(
          qj, _mm512_mul_pd(inv_r, _mm512_mul_pd(inv_r, inv_r)));
      p0 = _mm512_fmadd_pd(inv_r, qj, p0);
      x0 = _mm512_fmadd_pd(w, dx, x0);
      y0 = _mm512_fmadd_pd(w, dy, y0);
      z0 = _mm512_fmadd_pd(w, dz, z0);

      dx = _mm512_sub_pd(tx1, xj);
      dy = _mm512_sub_pd(ty1, yj);
      dz = _mm512_sub_pd(tz1, zj);
      r2 = _mm512_fmadd_pd(
          dx, dx, _mm512_fmadd_pd(dy, dy, _mm512_mul_pd(dz, dz)));
      inv_r = detail::masked_rsqrt_nr2(
          r2, _mm512_cmp_pd_mask(r2, zero, _CMP_GT_OQ));
      w = _mm512_mul_pd(qj,
                        _mm512_mul_pd(inv_r, _mm512_mul_pd(inv_r, inv_r)));
      p1 = _mm512_fmadd_pd(inv_r, qj, p1);
      x1 = _mm512_fmadd_pd(w, dx, x1);
      y1 = _mm512_fmadd_pd(w, dy, y1);
      z1 = _mm512_fmadd_pd(w, dz, z1);
    }
    _mm512_storeu_pd(phi, _mm512_add_pd(_mm512_loadu_pd(phi), p0));
    _mm512_storeu_pd(phi + 8, _mm512_add_pd(_mm512_loadu_pd(phi + 8), p1));
    _mm512_storeu_pd(ex, _mm512_add_pd(_mm512_loadu_pd(ex), x0));
    _mm512_storeu_pd(ex + 8, _mm512_add_pd(_mm512_loadu_pd(ex + 8), x1));
    _mm512_storeu_pd(ey, _mm512_add_pd(_mm512_loadu_pd(ey), y0));
    _mm512_storeu_pd(ey + 8, _mm512_add_pd(_mm512_loadu_pd(ey + 8), y1));
    _mm512_storeu_pd(ez, _mm512_add_pd(_mm512_loadu_pd(ez), z0));
    _mm512_storeu_pd(ez + 8, _mm512_add_pd(_mm512_loadu_pd(ez + 8), z1));
  }
};

/// Screened-Coulomb (erfc) potential tile, the kPeriodicMesh near field.
/// Fully vectorized: the distance pipeline (r^2, masked rsqrt) feeds the
/// A&S 7.1.26 erfc approximation (detail::erfc_gauss_pd) — its ~1.5e-7
/// absolute error sits far below the mesh split tolerance, and no lane
/// ever leaves the registers for libm.
template <>
struct TileSimd<false, CoulombErfcKernel> {
  static constexpr bool kAvailable = true;

  static void run(const double* tx, const double* ty, const double* tz,
                  const double* sx, const double* sy, const double* sz,
                  const double* sq, std::size_t ns, CoulombErfcKernel k,
                  double* phi, double*, double*, double*) {
    const __m512d zero = _mm512_setzero_pd();
    const __m512d tx0 = _mm512_loadu_pd(tx), tx1 = _mm512_loadu_pd(tx + 8);
    const __m512d ty0 = _mm512_loadu_pd(ty), ty1 = _mm512_loadu_pd(ty + 8);
    const __m512d tz0 = _mm512_loadu_pd(tz), tz1 = _mm512_loadu_pd(tz + 8);
    const __m512d va = _mm512_set1_pd(k.alpha);
    __m512d acc0 = zero, acc1 = zero;
    for (std::size_t j = 0; j < ns; ++j) {
      const __m512d xj = _mm512_set1_pd(sx[j]);
      const __m512d yj = _mm512_set1_pd(sy[j]);
      const __m512d zj = _mm512_set1_pd(sz[j]);
      const __m512d qj = _mm512_set1_pd(sq[j]);

      __m512d dx = _mm512_sub_pd(tx0, xj);
      __m512d dy = _mm512_sub_pd(ty0, yj);
      __m512d dz = _mm512_sub_pd(tz0, zj);
      __m512d r2 = _mm512_fmadd_pd(
          dx, dx, _mm512_fmadd_pd(dy, dy, _mm512_mul_pd(dz, dz)));
      __m512d inv = detail::masked_rsqrt_nr2(
          r2, _mm512_cmp_pd_mask(r2, zero, _CMP_GT_OQ));
      __m512d erfc0, gauss0;
      detail::erfc_gauss_pd(_mm512_mul_pd(va, _mm512_mul_pd(r2, inv)), erfc0,
                            gauss0);
      acc0 = _mm512_fmadd_pd(_mm512_mul_pd(erfc0, inv), qj, acc0);

      dx = _mm512_sub_pd(tx1, xj);
      dy = _mm512_sub_pd(ty1, yj);
      dz = _mm512_sub_pd(tz1, zj);
      r2 = _mm512_fmadd_pd(
          dx, dx, _mm512_fmadd_pd(dy, dy, _mm512_mul_pd(dz, dz)));
      inv = detail::masked_rsqrt_nr2(
          r2, _mm512_cmp_pd_mask(r2, zero, _CMP_GT_OQ));
      __m512d erfc1, gauss1;
      detail::erfc_gauss_pd(_mm512_mul_pd(va, _mm512_mul_pd(r2, inv)), erfc1,
                            gauss1);
      acc1 = _mm512_fmadd_pd(_mm512_mul_pd(erfc1, inv), qj, acc1);
    }
    _mm512_storeu_pd(phi, _mm512_add_pd(_mm512_loadu_pd(phi), acc0));
    _mm512_storeu_pd(phi + 8, _mm512_add_pd(_mm512_loadu_pd(phi + 8), acc1));
  }
};

/// Screened-Coulomb potential+field tile: same hybrid split; the per-lane
/// scalar section evaluates erfc and the Gaussian together.
template <>
struct TileSimd<true, CoulombErfcGradKernel> {
  static constexpr bool kAvailable = true;

  static void run(const double* tx, const double* ty, const double* tz,
                  const double* sx, const double* sy, const double* sz,
                  const double* sq, std::size_t ns, CoulombErfcGradKernel k,
                  double* phi, double* ex, double* ey, double* ez) {
    constexpr double kTwoOverSqrtPi = 1.1283791670955126;
    const __m512d zero = _mm512_setzero_pd();
    const __m512d tx0 = _mm512_loadu_pd(tx), tx1 = _mm512_loadu_pd(tx + 8);
    const __m512d ty0 = _mm512_loadu_pd(ty), ty1 = _mm512_loadu_pd(ty + 8);
    const __m512d tz0 = _mm512_loadu_pd(tz), tz1 = _mm512_loadu_pd(tz + 8);
    const __m512d va = _mm512_set1_pd(k.alpha);
    const __m512d vgc = _mm512_set1_pd(kTwoOverSqrtPi * k.alpha);
    __m512d p0 = zero, p1 = zero;
    __m512d x0 = zero, x1 = zero;
    __m512d y0 = zero, y1 = zero;
    __m512d z0 = zero, z1 = zero;
    for (std::size_t j = 0; j < ns; ++j) {
      const __m512d xj = _mm512_set1_pd(sx[j]);
      const __m512d yj = _mm512_set1_pd(sy[j]);
      const __m512d zj = _mm512_set1_pd(sz[j]);
      const __m512d qj = _mm512_set1_pd(sq[j]);

      const __m512d dx0 = _mm512_sub_pd(tx0, xj);
      const __m512d dy0 = _mm512_sub_pd(ty0, yj);
      const __m512d dz0 = _mm512_sub_pd(tz0, zj);
      __m512d r2 = _mm512_fmadd_pd(
          dx0, dx0, _mm512_fmadd_pd(dy0, dy0, _mm512_mul_pd(dz0, dz0)));
      __m512d inv = detail::masked_rsqrt_nr2(
          r2, _mm512_cmp_pd_mask(r2, zero, _CMP_GT_OQ));
      __m512d erfcv, gauss;
      detail::erfc_gauss_pd(_mm512_mul_pd(va, _mm512_mul_pd(r2, inv)), erfcv,
                            gauss);
      // g = erfc(ar)/r; -slope = (g + (2a/sqrt(pi)) e^{-a^2 r^2}) / r^2;
      // the inv factors keep masked (coincident) lanes at zero.
      __m512d g = _mm512_mul_pd(erfcv, inv);
      __m512d w = _mm512_mul_pd(
          _mm512_mul_pd(_mm512_fmadd_pd(vgc, gauss, g),
                        _mm512_mul_pd(inv, inv)),
          qj);
      p0 = _mm512_fmadd_pd(g, qj, p0);
      x0 = _mm512_fmadd_pd(w, dx0, x0);
      y0 = _mm512_fmadd_pd(w, dy0, y0);
      z0 = _mm512_fmadd_pd(w, dz0, z0);

      const __m512d dx1 = _mm512_sub_pd(tx1, xj);
      const __m512d dy1 = _mm512_sub_pd(ty1, yj);
      const __m512d dz1 = _mm512_sub_pd(tz1, zj);
      r2 = _mm512_fmadd_pd(
          dx1, dx1, _mm512_fmadd_pd(dy1, dy1, _mm512_mul_pd(dz1, dz1)));
      inv = detail::masked_rsqrt_nr2(
          r2, _mm512_cmp_pd_mask(r2, zero, _CMP_GT_OQ));
      detail::erfc_gauss_pd(_mm512_mul_pd(va, _mm512_mul_pd(r2, inv)), erfcv,
                            gauss);
      g = _mm512_mul_pd(erfcv, inv);
      w = _mm512_mul_pd(
          _mm512_mul_pd(_mm512_fmadd_pd(vgc, gauss, g),
                        _mm512_mul_pd(inv, inv)),
          qj);
      p1 = _mm512_fmadd_pd(g, qj, p1);
      x1 = _mm512_fmadd_pd(w, dx1, x1);
      y1 = _mm512_fmadd_pd(w, dy1, y1);
      z1 = _mm512_fmadd_pd(w, dz1, z1);
    }
    _mm512_storeu_pd(phi, _mm512_add_pd(_mm512_loadu_pd(phi), p0));
    _mm512_storeu_pd(phi + 8, _mm512_add_pd(_mm512_loadu_pd(phi + 8), p1));
    _mm512_storeu_pd(ex, _mm512_add_pd(_mm512_loadu_pd(ex), x0));
    _mm512_storeu_pd(ex + 8, _mm512_add_pd(_mm512_loadu_pd(ex + 8), x1));
    _mm512_storeu_pd(ey, _mm512_add_pd(_mm512_loadu_pd(ey), y0));
    _mm512_storeu_pd(ey + 8, _mm512_add_pd(_mm512_loadu_pd(ey + 8), y1));
    _mm512_storeu_pd(ez, _mm512_add_pd(_mm512_loadu_pd(ez), z0));
    _mm512_storeu_pd(ez + 8, _mm512_add_pd(_mm512_loadu_pd(ez + 8), z1));
  }
};

/// Mutual Coulomb potential tile: like TileSimd<false, CoulombKernel>, with
/// a per-source horizontal reduction feeding the mirror potentials.
template <>
struct TileSimdMutual<false, CoulombKernel> {
  static constexpr bool kAvailable = true;

  static void run(const double* tx, const double* ty, const double* tz,
                  const double* tq, const double* sx, const double* sy,
                  const double* sz, const double* sq, std::size_t ns,
                  CoulombKernel, double* phi, double*, double*, double*,
                  double* sphi, double*, double*, double*) {
    const __m512d zero = _mm512_setzero_pd();
    const __m512d tx0 = _mm512_loadu_pd(tx), tx1 = _mm512_loadu_pd(tx + 8);
    const __m512d ty0 = _mm512_loadu_pd(ty), ty1 = _mm512_loadu_pd(ty + 8);
    const __m512d tz0 = _mm512_loadu_pd(tz), tz1 = _mm512_loadu_pd(tz + 8);
    const __m512d tq0 = _mm512_loadu_pd(tq), tq1 = _mm512_loadu_pd(tq + 8);
    __m512d acc0 = zero, acc1 = zero;
    for (std::size_t j = 0; j < ns; ++j) {
      const __m512d xj = _mm512_set1_pd(sx[j]);
      const __m512d yj = _mm512_set1_pd(sy[j]);
      const __m512d zj = _mm512_set1_pd(sz[j]);
      const __m512d qj = _mm512_set1_pd(sq[j]);

      __m512d dx = _mm512_sub_pd(tx0, xj);
      __m512d dy = _mm512_sub_pd(ty0, yj);
      __m512d dz = _mm512_sub_pd(tz0, zj);
      __m512d r2 = _mm512_fmadd_pd(
          dx, dx, _mm512_fmadd_pd(dy, dy, _mm512_mul_pd(dz, dz)));
      const __m512d inv0 = detail::masked_rsqrt_nr2(
          r2, _mm512_cmp_pd_mask(r2, zero, _CMP_GT_OQ));
      acc0 = _mm512_fmadd_pd(inv0, qj, acc0);

      dx = _mm512_sub_pd(tx1, xj);
      dy = _mm512_sub_pd(ty1, yj);
      dz = _mm512_sub_pd(tz1, zj);
      r2 = _mm512_fmadd_pd(
          dx, dx, _mm512_fmadd_pd(dy, dy, _mm512_mul_pd(dz, dz)));
      const __m512d inv1 = detail::masked_rsqrt_nr2(
          r2, _mm512_cmp_pd_mask(r2, zero, _CMP_GT_OQ));
      acc1 = _mm512_fmadd_pd(inv1, qj, acc1);

      sphi[j] += _mm512_reduce_add_pd(_mm512_fmadd_pd(
          inv0, tq0, _mm512_mul_pd(inv1, tq1)));
    }
    _mm512_storeu_pd(phi, _mm512_add_pd(_mm512_loadu_pd(phi), acc0));
    _mm512_storeu_pd(phi + 8, _mm512_add_pd(_mm512_loadu_pd(phi + 8), acc1));
  }
};

/// Mutual Coulomb potential+field tile.
template <>
struct TileSimdMutual<true, CoulombGradKernel> {
  static constexpr bool kAvailable = true;

  static void run(const double* tx, const double* ty, const double* tz,
                  const double* tq, const double* sx, const double* sy,
                  const double* sz, const double* sq, std::size_t ns,
                  CoulombGradKernel, double* phi, double* ex, double* ey,
                  double* ez, double* sphi, double* sex, double* sey,
                  double* sez) {
    const __m512d zero = _mm512_setzero_pd();
    const __m512d tx0 = _mm512_loadu_pd(tx), tx1 = _mm512_loadu_pd(tx + 8);
    const __m512d ty0 = _mm512_loadu_pd(ty), ty1 = _mm512_loadu_pd(ty + 8);
    const __m512d tz0 = _mm512_loadu_pd(tz), tz1 = _mm512_loadu_pd(tz + 8);
    const __m512d tq0 = _mm512_loadu_pd(tq), tq1 = _mm512_loadu_pd(tq + 8);
    __m512d p0 = zero, p1 = zero;
    __m512d x0 = zero, x1 = zero;
    __m512d y0 = zero, y1 = zero;
    __m512d z0 = zero, z1 = zero;
    for (std::size_t j = 0; j < ns; ++j) {
      const __m512d xj = _mm512_set1_pd(sx[j]);
      const __m512d yj = _mm512_set1_pd(sy[j]);
      const __m512d zj = _mm512_set1_pd(sz[j]);
      const __m512d qj = _mm512_set1_pd(sq[j]);

      __m512d dx0 = _mm512_sub_pd(tx0, xj);
      __m512d dy0 = _mm512_sub_pd(ty0, yj);
      __m512d dz0 = _mm512_sub_pd(tz0, zj);
      __m512d r2 = _mm512_fmadd_pd(
          dx0, dx0, _mm512_fmadd_pd(dy0, dy0, _mm512_mul_pd(dz0, dz0)));
      const __m512d inv0 = detail::masked_rsqrt_nr2(
          r2, _mm512_cmp_pd_mask(r2, zero, _CMP_GT_OQ));
      // w = 1/r^3 (positive); target side subtracts slope*d*q with
      // slope = -w, i.e. adds w*d*q; source side adds slope*d*q = -w*d*q.
      const __m512d w0 = _mm512_mul_pd(inv0, _mm512_mul_pd(inv0, inv0));
      const __m512d wq0 = _mm512_mul_pd(w0, qj);
      p0 = _mm512_fmadd_pd(inv0, qj, p0);
      x0 = _mm512_fmadd_pd(wq0, dx0, x0);
      y0 = _mm512_fmadd_pd(wq0, dy0, y0);
      z0 = _mm512_fmadd_pd(wq0, dz0, z0);

      __m512d dx1 = _mm512_sub_pd(tx1, xj);
      __m512d dy1 = _mm512_sub_pd(ty1, yj);
      __m512d dz1 = _mm512_sub_pd(tz1, zj);
      r2 = _mm512_fmadd_pd(
          dx1, dx1, _mm512_fmadd_pd(dy1, dy1, _mm512_mul_pd(dz1, dz1)));
      const __m512d inv1 = detail::masked_rsqrt_nr2(
          r2, _mm512_cmp_pd_mask(r2, zero, _CMP_GT_OQ));
      const __m512d w1 = _mm512_mul_pd(inv1, _mm512_mul_pd(inv1, inv1));
      const __m512d wq1 = _mm512_mul_pd(w1, qj);
      p1 = _mm512_fmadd_pd(inv1, qj, p1);
      x1 = _mm512_fmadd_pd(wq1, dx1, x1);
      y1 = _mm512_fmadd_pd(wq1, dy1, y1);
      z1 = _mm512_fmadd_pd(wq1, dz1, z1);

      const __m512d wt0 = _mm512_mul_pd(w0, tq0);
      const __m512d wt1 = _mm512_mul_pd(w1, tq1);
      sphi[j] += _mm512_reduce_add_pd(_mm512_fmadd_pd(
          inv0, tq0, _mm512_mul_pd(inv1, tq1)));
      sex[j] -= _mm512_reduce_add_pd(_mm512_fmadd_pd(
          wt0, dx0, _mm512_mul_pd(wt1, dx1)));
      sey[j] -= _mm512_reduce_add_pd(_mm512_fmadd_pd(
          wt0, dy0, _mm512_mul_pd(wt1, dy1)));
      sez[j] -= _mm512_reduce_add_pd(_mm512_fmadd_pd(
          wt0, dz0, _mm512_mul_pd(wt1, dz1)));
    }
    _mm512_storeu_pd(phi, _mm512_add_pd(_mm512_loadu_pd(phi), p0));
    _mm512_storeu_pd(phi + 8, _mm512_add_pd(_mm512_loadu_pd(phi + 8), p1));
    _mm512_storeu_pd(ex, _mm512_add_pd(_mm512_loadu_pd(ex), x0));
    _mm512_storeu_pd(ex + 8, _mm512_add_pd(_mm512_loadu_pd(ex + 8), x1));
    _mm512_storeu_pd(ey, _mm512_add_pd(_mm512_loadu_pd(ey), y0));
    _mm512_storeu_pd(ey + 8, _mm512_add_pd(_mm512_loadu_pd(ey + 8), y1));
    _mm512_storeu_pd(ez, _mm512_add_pd(_mm512_loadu_pd(ez), z0));
    _mm512_storeu_pd(ez + 8, _mm512_add_pd(_mm512_loadu_pd(ez + 8), z1));
  }
};

/// fp32 Coulomb potential tile: 16 targets in ONE zmm accumulator register,
/// vrsqrt14ps + one Newton step, float partials widened to fp64 every
/// kF32FlushInterval sources.
template <>
struct TileSimdF32<false, CoulombKernel> {
  static constexpr bool kAvailable = true;

  static void run(const float* tx, const float* ty, const float* tz,
                  const float* sx, const float* sy, const float* sz,
                  const float* sq, std::size_t ns, CoulombKernel,
                  double* phi, double*, double*, double*) {
    const __m512 zero = _mm512_setzero_ps();
    const __m512 tx0 = _mm512_loadu_ps(tx);
    const __m512 ty0 = _mm512_loadu_ps(ty);
    const __m512 tz0 = _mm512_loadu_ps(tz);
    __m512d p0 = _mm512_setzero_pd(), p1 = _mm512_setzero_pd();
    __m512 acc = zero;
    std::size_t since_flush = 0;
    for (std::size_t j = 0; j < ns; ++j) {
      const __m512 xj = _mm512_set1_ps(sx[j]);
      const __m512 yj = _mm512_set1_ps(sy[j]);
      const __m512 zj = _mm512_set1_ps(sz[j]);
      const __m512 qj = _mm512_set1_ps(sq[j]);
      const __m512 dx = _mm512_sub_ps(tx0, xj);
      const __m512 dy = _mm512_sub_ps(ty0, yj);
      const __m512 dz = _mm512_sub_ps(tz0, zj);
      const __m512 r2 = _mm512_fmadd_ps(
          dx, dx, _mm512_fmadd_ps(dy, dy, _mm512_mul_ps(dz, dz)));
      acc = _mm512_fmadd_ps(
          detail::masked_rsqrt_ps_nr1(
              r2, _mm512_cmp_ps_mask(r2, zero, _CMP_GT_OQ)),
          qj, acc);
      if (++since_flush == kF32FlushInterval) {
        detail::flush_ps_to_pd(acc, p0, p1);
        acc = zero;
        since_flush = 0;
      }
    }
    detail::flush_ps_to_pd(acc, p0, p1);
    _mm512_storeu_pd(phi, _mm512_add_pd(_mm512_loadu_pd(phi), p0));
    _mm512_storeu_pd(phi + 8, _mm512_add_pd(_mm512_loadu_pd(phi + 8), p1));
  }
};

/// fp32 Coulomb potential+field tile: four zmm float accumulators, all
/// rsqrt-only, flushed into eight fp64 registers.
template <>
struct TileSimdF32<true, CoulombGradKernel> {
  static constexpr bool kAvailable = true;

  static void run(const float* tx, const float* ty, const float* tz,
                  const float* sx, const float* sy, const float* sz,
                  const float* sq, std::size_t ns, CoulombGradKernel,
                  double* phi, double* ex, double* ey, double* ez) {
    const __m512 zero = _mm512_setzero_ps();
    const __m512 tx0 = _mm512_loadu_ps(tx);
    const __m512 ty0 = _mm512_loadu_ps(ty);
    const __m512 tz0 = _mm512_loadu_ps(tz);
    __m512d pp0 = _mm512_setzero_pd(), pp1 = _mm512_setzero_pd();
    __m512d px0 = _mm512_setzero_pd(), px1 = _mm512_setzero_pd();
    __m512d py0 = _mm512_setzero_pd(), py1 = _mm512_setzero_pd();
    __m512d pz0 = _mm512_setzero_pd(), pz1 = _mm512_setzero_pd();
    __m512 ap = zero, ax = zero, ay = zero, az = zero;
    std::size_t since_flush = 0;
    for (std::size_t j = 0; j < ns; ++j) {
      const __m512 xj = _mm512_set1_ps(sx[j]);
      const __m512 yj = _mm512_set1_ps(sy[j]);
      const __m512 zj = _mm512_set1_ps(sz[j]);
      const __m512 qj = _mm512_set1_ps(sq[j]);
      const __m512 dx = _mm512_sub_ps(tx0, xj);
      const __m512 dy = _mm512_sub_ps(ty0, yj);
      const __m512 dz = _mm512_sub_ps(tz0, zj);
      const __m512 r2 = _mm512_fmadd_ps(
          dx, dx, _mm512_fmadd_ps(dy, dy, _mm512_mul_ps(dz, dz)));
      const __m512 inv_r = detail::masked_rsqrt_ps_nr1(
          r2, _mm512_cmp_ps_mask(r2, zero, _CMP_GT_OQ));
      // w = q/r^3; target side accumulates +w*d (E = -grad phi).
      const __m512 w = _mm512_mul_ps(
          qj, _mm512_mul_ps(inv_r, _mm512_mul_ps(inv_r, inv_r)));
      ap = _mm512_fmadd_ps(inv_r, qj, ap);
      ax = _mm512_fmadd_ps(w, dx, ax);
      ay = _mm512_fmadd_ps(w, dy, ay);
      az = _mm512_fmadd_ps(w, dz, az);
      if (++since_flush == kF32FlushInterval) {
        detail::flush_ps_to_pd(ap, pp0, pp1);
        detail::flush_ps_to_pd(ax, px0, px1);
        detail::flush_ps_to_pd(ay, py0, py1);
        detail::flush_ps_to_pd(az, pz0, pz1);
        ap = ax = ay = az = zero;
        since_flush = 0;
      }
    }
    detail::flush_ps_to_pd(ap, pp0, pp1);
    detail::flush_ps_to_pd(ax, px0, px1);
    detail::flush_ps_to_pd(ay, py0, py1);
    detail::flush_ps_to_pd(az, pz0, pz1);
    _mm512_storeu_pd(phi, _mm512_add_pd(_mm512_loadu_pd(phi), pp0));
    _mm512_storeu_pd(phi + 8, _mm512_add_pd(_mm512_loadu_pd(phi + 8), pp1));
    _mm512_storeu_pd(ex, _mm512_add_pd(_mm512_loadu_pd(ex), px0));
    _mm512_storeu_pd(ex + 8, _mm512_add_pd(_mm512_loadu_pd(ex + 8), px1));
    _mm512_storeu_pd(ey, _mm512_add_pd(_mm512_loadu_pd(ey), py0));
    _mm512_storeu_pd(ey + 8, _mm512_add_pd(_mm512_loadu_pd(ey + 8), py1));
    _mm512_storeu_pd(ez, _mm512_add_pd(_mm512_loadu_pd(ez), pz0));
    _mm512_storeu_pd(ez + 8, _mm512_add_pd(_mm512_loadu_pd(ez + 8), pz1));
  }
};

#endif  // __AVX512F__

/// One target against a source stream, vectorized across sources with a
/// simd reduction (the per-target-MAC shape, and the edge case nt == 1).
template <bool Field, typename K>
inline void accumulate_single(double tx, double ty, double tz,
                              const double* __restrict sx,
                              const double* __restrict sy,
                              const double* __restrict sz,
                              const double* __restrict sq, std::size_t ns,
                              K k, double& phi, double& ex, double& ey,
                              double& ez) {
  double accp = 0.0, accx = 0.0, accy = 0.0, accz = 0.0;
#pragma omp simd reduction(+ : accp, accx, accy, accz)
  for (std::size_t j = 0; j < ns; ++j) {
    const double dx = tx - sx[j];
    const double dy = ty - sy[j];
    const double dz = tz - sz[j];
    const double r2 = dx * dx + dy * dy + dz * dz;
    const double qj = sq[j];
    if constexpr (Field) {
      const GradValue v = grad_value_masked(k, r2);
      accp += v.g * qj;
      accx -= v.slope * dx * qj;
      accy -= v.slope * dy * qj;
      accz -= v.slope * dz * qj;
    } else {
      accp += kernel_value_masked(k, r2) * qj;
    }
  }
  phi += accp;
  if constexpr (Field) {
    ex += accx;
    ey += accy;
    ez += accz;
  }
}

/// A tile of nt <= kTargetTile targets against ns contiguous source points:
/// the unified inner kernel of every host evaluation path. `Fast` permits
/// the ISA-specific tile (treecode paths); exact callers pass false.
template <bool Field, bool Fast, typename K>
inline void accumulate_tile(const double* __restrict tx,
                            const double* __restrict ty,
                            const double* __restrict tz, std::size_t nt,
                            const double* __restrict sx,
                            const double* __restrict sy,
                            const double* __restrict sz,
                            const double* __restrict sq, std::size_t ns, K k,
                            double* __restrict phi, double* __restrict ex,
                            double* __restrict ey, double* __restrict ez) {
  if constexpr (Fast && TileSimd<Field, K>::kAvailable) {
    if (nt == kTargetTile) {
      TileSimd<Field, K>::run(tx, ty, tz, sx, sy, sz, sq, ns, k, phi, ex, ey,
                              ez);
      return;
    }
  }
  if (nt == 1) {
    accumulate_single<Field>(tx[0], ty[0], tz[0], sx, sy, sz, sq, ns, k,
                             phi[0], Field ? ex[0] : phi[0],
                             Field ? ey[0] : phi[0], Field ? ez[0] : phi[0]);
    return;
  }
  // Portable blocked form: one SIMD lane per target, sources broadcast.
  double accp[kTargetTile] = {};
  double accx[kTargetTile] = {};
  double accy[kTargetTile] = {};
  double accz[kTargetTile] = {};
  for (std::size_t j = 0; j < ns; ++j) {
    const double xj = sx[j], yj = sy[j], zj = sz[j], qj = sq[j];
#pragma omp simd
    for (std::size_t t = 0; t < nt; ++t) {
      const double dx = tx[t] - xj;
      const double dy = ty[t] - yj;
      const double dz = tz[t] - zj;
      const double r2 = dx * dx + dy * dy + dz * dz;
      if constexpr (Field) {
        const GradValue v = grad_value_masked(k, r2);
        accp[t] += v.g * qj;
        accx[t] -= v.slope * dx * qj;
        accy[t] -= v.slope * dy * qj;
        accz[t] -= v.slope * dz * qj;
      } else {
        accp[t] += kernel_value_masked(k, r2) * qj;
      }
    }
  }
  for (std::size_t t = 0; t < nt; ++t) phi[t] += accp[t];
  if constexpr (Field) {
    for (std::size_t t = 0; t < nt; ++t) ex[t] += accx[t];
    for (std::size_t t = 0; t < nt; ++t) ey[t] += accy[t];
    for (std::size_t t = 0; t < nt; ++t) ez[t] += accz[t];
  }
}

/// fp32 twin of accumulate_single: one target against a float source
/// stream, simd-reduced in float per kF32FlushInterval block, block sums
/// accumulated in fp64.
template <bool Field, typename K>
inline void accumulate_single_f32(double tx, double ty, double tz,
                                  const float* __restrict sx,
                                  const float* __restrict sy,
                                  const float* __restrict sz,
                                  const float* __restrict sq, std::size_t ns,
                                  K k, double& phi, double& ex, double& ey,
                                  double& ez) {
  const float x = static_cast<float>(tx);
  const float y = static_cast<float>(ty);
  const float z = static_cast<float>(tz);
  double dp = 0.0, dxs = 0.0, dys = 0.0, dzs = 0.0;
  for (std::size_t j0 = 0; j0 < ns; j0 += kF32FlushInterval) {
    const std::size_t jend = std::min(ns, j0 + kF32FlushInterval);
    float accp = 0.0f, accx = 0.0f, accy = 0.0f, accz = 0.0f;
#pragma omp simd reduction(+ : accp, accx, accy, accz)
    for (std::size_t j = j0; j < jend; ++j) {
      const float dx = x - sx[j];
      const float dy = y - sy[j];
      const float dz = z - sz[j];
      const float r2 = dx * dx + dy * dy + dz * dz;
      const float qj = sq[j];
      if constexpr (Field) {
        const GradValueF v = grad_value_masked(k, r2);
        accp += v.g * qj;
        accx -= v.slope * dx * qj;
        accy -= v.slope * dy * qj;
        accz -= v.slope * dz * qj;
      } else {
        accp += kernel_value_masked(k, r2) * qj;
      }
    }
    dp += accp;
    dxs += accx;
    dys += accy;
    dzs += accz;
  }
  phi += dp;
  if constexpr (Field) {
    ex += dxs;
    ey += dys;
    ez += dzs;
  }
}

/// fp32 twin of accumulate_tile for tagged far-field interactions: fp64
/// target coordinates are narrowed once per tile (<= 16 conversions against
/// an O(ns) inner loop), sources stream as floats from an Fp32Shadow, and
/// float partial sums are widened into the fp64 outputs every
/// kF32FlushInterval sources.
template <bool Field, bool Fast, typename K>
inline void accumulate_tile_f32(const double* __restrict tx,
                                const double* __restrict ty,
                                const double* __restrict tz, std::size_t nt,
                                const float* __restrict sx,
                                const float* __restrict sy,
                                const float* __restrict sz,
                                const float* __restrict sq, std::size_t ns,
                                K k, double* __restrict phi,
                                double* __restrict ex, double* __restrict ey,
                                double* __restrict ez) {
  if (nt == 1) {
    accumulate_single_f32<Field>(
        tx[0], ty[0], tz[0], sx, sy, sz, sq, ns, k, phi[0],
        Field ? ex[0] : phi[0], Field ? ey[0] : phi[0],
        Field ? ez[0] : phi[0]);
    return;
  }
  float ftx[kTargetTile], fty[kTargetTile], ftz[kTargetTile];
  for (std::size_t t = 0; t < nt; ++t) {
    ftx[t] = static_cast<float>(tx[t]);
    fty[t] = static_cast<float>(ty[t]);
    ftz[t] = static_cast<float>(tz[t]);
  }
  if constexpr (Fast && TileSimdF32<Field, K>::kAvailable) {
    if (nt == kTargetTile) {
      TileSimdF32<Field, K>::run(ftx, fty, ftz, sx, sy, sz, sq, ns, k, phi,
                                 ex, ey, ez);
      return;
    }
  }
  double accp[kTargetTile] = {};
  double accx[kTargetTile] = {};
  double accy[kTargetTile] = {};
  double accz[kTargetTile] = {};
  for (std::size_t j0 = 0; j0 < ns; j0 += kF32FlushInterval) {
    const std::size_t jend = std::min(ns, j0 + kF32FlushInterval);
    float bp[kTargetTile] = {};
    float bx[kTargetTile] = {};
    float by[kTargetTile] = {};
    float bz[kTargetTile] = {};
    for (std::size_t j = j0; j < jend; ++j) {
      const float xj = sx[j], yj = sy[j], zj = sz[j], qj = sq[j];
#pragma omp simd
      for (std::size_t t = 0; t < nt; ++t) {
        const float dx = ftx[t] - xj;
        const float dy = fty[t] - yj;
        const float dz = ftz[t] - zj;
        const float r2 = dx * dx + dy * dy + dz * dz;
        if constexpr (Field) {
          const GradValueF v = grad_value_masked(k, r2);
          bp[t] += v.g * qj;
          bx[t] -= v.slope * dx * qj;
          by[t] -= v.slope * dy * qj;
          bz[t] -= v.slope * dz * qj;
        } else {
          bp[t] += kernel_value_masked(k, r2) * qj;
        }
      }
    }
    for (std::size_t t = 0; t < nt; ++t) accp[t] += bp[t];
    if constexpr (Field) {
      for (std::size_t t = 0; t < nt; ++t) accx[t] += bx[t];
      for (std::size_t t = 0; t < nt; ++t) accy[t] += by[t];
      for (std::size_t t = 0; t < nt; ++t) accz[t] += bz[t];
    }
  }
  for (std::size_t t = 0; t < nt; ++t) phi[t] += accp[t];
  if constexpr (Field) {
    for (std::size_t t = 0; t < nt; ++t) ex[t] += accx[t];
    for (std::size_t t = 0; t < nt; ++t) ey[t] += accy[t];
    for (std::size_t t = 0; t < nt; ++t) ez[t] += accz[t];
  }
}

/// Mutual (symmetric) tile for self-interaction dual traversals: a tile of
/// nt targets against ns sources where targets and sources are disjoint
/// ranges of the *same* particle set. Every kernel value is computed once
/// and accumulated into both sides (Newton's third law), halving the
/// near-field kernel evaluations. Source-side results go to the mirror
/// accumulators `sphi`/`sex`/`sey`/`sez` (indexed by source position).
template <bool Field, typename K>
inline void accumulate_tile_mutual(
    const double* __restrict tx, const double* __restrict ty,
    const double* __restrict tz, const double* __restrict tq, std::size_t nt,
    const double* __restrict sx, const double* __restrict sy,
    const double* __restrict sz, const double* __restrict sq, std::size_t ns,
    K k, double* __restrict phi, double* __restrict ex,
    double* __restrict ey, double* __restrict ez, double* __restrict sphi,
    double* __restrict sex, double* __restrict sey, double* __restrict sez) {
  if constexpr (TileSimdMutual<Field, K>::kAvailable) {
    if (nt == kTargetTile) {
      TileSimdMutual<Field, K>::run(tx, ty, tz, tq, sx, sy, sz, sq, ns, k,
                                    phi, ex, ey, ez, sphi, sex, sey, sez);
      return;
    }
  }
  double accp[kTargetTile] = {};
  double accx[kTargetTile] = {};
  double accy[kTargetTile] = {};
  double accz[kTargetTile] = {};
  for (std::size_t j = 0; j < ns; ++j) {
    const double xj = sx[j], yj = sy[j], zj = sz[j], qj = sq[j];
    double sp = 0.0, sxx = 0.0, syy = 0.0, szz = 0.0;
#pragma omp simd reduction(+ : sp, sxx, syy, szz)
    for (std::size_t t = 0; t < nt; ++t) {
      const double dx = tx[t] - xj;
      const double dy = ty[t] - yj;
      const double dz = tz[t] - zj;
      const double r2 = dx * dx + dy * dy + dz * dz;
      if constexpr (Field) {
        const GradValue v = grad_value_masked(k, r2);
        accp[t] += v.g * qj;
        accx[t] -= v.slope * dx * qj;
        accy[t] -= v.slope * dy * qj;
        accz[t] -= v.slope * dz * qj;
        sp += v.g * tq[t];
        // E at the source from the target: the separation flips sign.
        sxx += v.slope * dx * tq[t];
        syy += v.slope * dy * tq[t];
        szz += v.slope * dz * tq[t];
      } else {
        const double g = kernel_value_masked(k, r2);
        accp[t] += g * qj;
        sp += g * tq[t];
      }
    }
    sphi[j] += sp;
    if constexpr (Field) {
      sex[j] += sxx;
      sey[j] += syy;
      sez[j] += szz;
    }
  }
  for (std::size_t t = 0; t < nt; ++t) phi[t] += accp[t];
  if constexpr (Field) {
    for (std::size_t t = 0; t < nt; ++t) ex[t] += accx[t];
    for (std::size_t t = 0; t < nt; ++t) ey[t] += accy[t];
    for (std::size_t t = 0; t < nt; ++t) ez[t] += accz[t];
  }
}

/// Triangular self-interaction of one leaf range (the diagonal pair of a
/// self-mode dual traversal): each unordered particle pair is evaluated
/// once and accumulated into both particles; for kernels regular at the
/// origin the G(0) self-term is added once per particle, matching the
/// direct-sum convention.
template <bool Field, typename K>
inline void accumulate_range_self(const double* __restrict x,
                                  const double* __restrict y,
                                  const double* __restrict z,
                                  const double* __restrict q, std::size_t n,
                                  K k, double* __restrict phi,
                                  double* __restrict ex,
                                  double* __restrict ey,
                                  double* __restrict ez) {
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = x[i], yi = y[i], zi = z[i], qi = q[i];
    double accp = 0.0, accx = 0.0, accy = 0.0, accz = 0.0;
#pragma omp simd reduction(+ : accp, accx, accy, accz)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = xi - x[j];
      const double dy = yi - y[j];
      const double dz = zi - z[j];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if constexpr (Field) {
        const GradValue v = grad_value_masked(k, r2);
        accp += v.g * q[j];
        accx -= v.slope * dx * q[j];
        accy -= v.slope * dy * q[j];
        accz -= v.slope * dz * q[j];
        phi[j] += v.g * qi;
        ex[j] += v.slope * dx * qi;
        ey[j] += v.slope * dy * qi;
        ez[j] += v.slope * dz * qi;
      } else {
        const double g = kernel_value_masked(k, r2);
        accp += g * q[j];
        phi[j] += g * qi;
      }
    }
    phi[i] += accp;
    if constexpr (Field) {
      ex[i] += accx;
      ey[i] += accy;
      ez[i] += accz;
    }
  }
  if constexpr (!K::kSingular) {
    double g0;
    if constexpr (Field) {
      g0 = k.grad(0.0).g;
    } else {
      g0 = k(0.0);
    }
    for (std::size_t i = 0; i < n; ++i) phi[i] += g0 * q[i];
    // grad at zero separation contributes no field (the offset is zero).
  }
}

/// child += (B1 (x) B2 (x) B3) parent — the 3-mode tensor transfer of the
/// dual downward pass (one component of a parent-to-child grid transfer),
/// applied mode-by-mode (3 m^4 instead of m^6 work). Bd is row-major m x m
/// with Bd[k*m + j] = L_j^{parent,d}(child grid point k); tmp1/tmp2 are
/// caller scratch of m^3 doubles each. Shared by both engines.
void dual_transfer_apply(const double* parent, double* child,
                         const double* b1, const double* b2,
                         const double* b3, std::size_t m, double* tmp1,
                         double* tmp2);

// ---- List-driven evaluators (implemented in cpu_kernels.cpp) -------------

/// Evaluate potentials (tree order) for batched targets. A non-null `fp32`
/// shadow routes interactions tagged fp32-eligible through the fp32 tiles
/// (null, or empty per-batch tags, executes everything fp64).
std::vector<double> cpu_evaluate(const OrderedParticles& targets,
                                 const std::vector<TargetBatch>& batches,
                                 const InteractionLists& lists,
                                 const ClusterTree& tree,
                                 const OrderedParticles& sources,
                                 const ClusterMoments& moments,
                                 const KernelSpec& kernel,
                                 const ShiftTable* shifts = nullptr,
                                 EngineCounters* counters = nullptr,
                                 CpuWorkspace* workspace = nullptr,
                                 const Fp32Shadow* fp32 = nullptr);

/// Ablation path: `lists` has one entry per target (per-target MAC).
std::vector<double> cpu_evaluate_per_target(
    const OrderedParticles& targets, const InteractionLists& lists,
    const ClusterTree& tree, const OrderedParticles& sources,
    const ClusterMoments& moments, const KernelSpec& kernel,
    const ShiftTable* shifts = nullptr, EngineCounters* counters = nullptr,
    CpuWorkspace* workspace = nullptr, const Fp32Shadow* fp32 = nullptr);

/// Potential + field evaluation (tree order) for batched targets, using the
/// analytic gradient of the barycentric approximation (core/fields.hpp).
FieldResult cpu_evaluate_field(const OrderedParticles& targets,
                               const std::vector<TargetBatch>& batches,
                               const InteractionLists& lists,
                               const ClusterTree& tree,
                               const OrderedParticles& sources,
                               const ClusterMoments& moments,
                               const KernelSpec& kernel,
                               const ShiftTable* shifts = nullptr,
                               EngineCounters* counters = nullptr,
                               CpuWorkspace* workspace = nullptr,
                               const Fp32Shadow* fp32 = nullptr);

/// Per-target-MAC potential + field evaluation.
FieldResult cpu_evaluate_field_per_target(
    const OrderedParticles& targets, const InteractionLists& lists,
    const ClusterTree& tree, const OrderedParticles& sources,
    const ClusterMoments& moments, const KernelSpec& kernel,
    const ShiftTable* shifts = nullptr, EngineCounters* counters = nullptr,
    CpuWorkspace* workspace = nullptr, const Fp32Shadow* fp32 = nullptr);

/// Dual-traversal potential evaluation (tree order): executes CC/CP pairs
/// onto target-node grids (parallel over grid groups), runs the downward
/// pass (parent grids propagate to child grids, leaves interpolate to
/// particles), and executes PC/direct pairs per target leaf — all four
/// kinds through the same blocked tile core. `target_grids` and
/// `moment_levels` hold one entry per ladder degree (DualPair::level).
std::vector<double> cpu_evaluate_dual(
    const OrderedParticles& targets, const ClusterTree& target_tree,
    std::span<const ClusterMoments> target_grids,
    const DualInteractionLists& lists, const ClusterTree& source_tree,
    const OrderedParticles& sources,
    std::span<const ClusterMoments> moment_levels, const KernelSpec& kernel,
    const ShiftTable* shifts = nullptr, EngineCounters* counters = nullptr,
    CpuWorkspace* workspace = nullptr, const Fp32Shadow* fp32 = nullptr);

/// Dual-traversal potential + field evaluation: CP/CC accumulate the field
/// at the target grid points and the downward pass interpolates each
/// component (the interpolant of the field converges at the same rate as
/// the field of the interpolant).
FieldResult cpu_evaluate_dual_field(
    const OrderedParticles& targets, const ClusterTree& target_tree,
    std::span<const ClusterMoments> target_grids,
    const DualInteractionLists& lists, const ClusterTree& source_tree,
    const OrderedParticles& sources,
    std::span<const ClusterMoments> moment_levels, const KernelSpec& kernel,
    const ShiftTable* shifts = nullptr, EngineCounters* counters = nullptr,
    CpuWorkspace* workspace = nullptr, const Fp32Shadow* fp32 = nullptr);

}  // namespace bltc
