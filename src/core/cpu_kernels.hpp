// Blocked CPU evaluation core — the one kernel that serves every host path.
//
// The paper's point (§3) is that batching targets against clusters turns
// both hot loops — the direct sum (Eq. 9) and the barycentric approximation
// (Eq. 11) — into the *same* high-intensity shape: a block of targets
// against a contiguous stream of weighted source points (real particles for
// Eq. 9, tensor-product Chebyshev points with modified charges for Eq. 11).
// This header exploits that on the host:
//
//   * `accumulate_tile` keeps a tile of `kTargetTile` targets' accumulators
//     (phi, and for fields ex/ey/ez) in registers and streams the source
//     block through a `#pragma omp simd` inner loop, one SIMD lane per
//     target. The singular-kernel guard is a branchless select
//     (kernel_value_masked / grad_value_masked) so the loop if-converts.
//   * A single-target variant vectorizes across *sources* with a simd
//     reduction instead — the shape the per-target MAC ablation needs.
//   * `TileSimd` is a hook for hand-tuned ISA-specific tiles; with AVX-512
//     the Coulomb kernel replaces vsqrt+vdiv with vrsqrt14pd refined by two
//     Newton iterations (relative error ~1e-16, far below the treecode's
//     interpolation error). The exact portable path remains the reference
//     (`Fast = false`), and the O(N^2) oracles in direct_sum.cpp stay on
//     their original scalar form so their results are bit-stable.
//
// One templated driver (`cpu_kernels.cpp`) executes interaction lists
// through these tiles for all four host paths: {potential, field} x
// {batched MAC, per-target MAC}. Per-cluster grids are expanded once per
// (list, cluster) visit into per-thread scratch that persists across
// evaluations (owned by CpuEngine), and lists are executed largest-first
// under guided scheduling so the parallel tail is made of cheap lists.
#pragma once

#include <cstddef>
#include <vector>

#include "core/engine.hpp"
#include "core/fields.hpp"
#include "core/interaction_lists.hpp"
#include "core/kernels.hpp"
#include "core/moments.hpp"
#include "core/particles.hpp"
#include "core/tree.hpp"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace bltc {

/// Targets per tile: accumulators for one tile live in registers for the
/// whole source stream (16 doubles = two AVX-512 registers, four NEON/SSE).
inline constexpr std::size_t kTargetTile = 16;

/// Per-thread scratch: one cluster's Chebyshev grid expanded to contiguous
/// point streams (coordinates + modified charges), reused across clusters,
/// lists, and evaluate() calls. `cached_cluster` skips re-expansion when
/// consecutive lists on one thread visit the same cluster (the common case
/// under the per-target MAC, where a list holds a single target); it is
/// only valid within one evaluation — the driver invalidates it on entry
/// because the modified charges can change between calls.
struct CpuScratch {
  AlignedVector px, py, pz, pq;
  int cached_cluster = -1;

  void ensure(std::size_t n) {
    if (px.size() < n) {
      px.resize(n);
      py.resize(n);
      pz.resize(n);
      pq.resize(n);
    }
  }
};

/// Host evaluation workspace. `CpuEngine` keeps one alive across
/// `Solver::evaluate` calls so repeated evaluations allocate nothing; the
/// free evaluator functions fall back to a call-local instance.
class CpuWorkspace {
 public:
  /// Size the per-thread scratch table and invalidate the per-thread
  /// expansion caches; call from serial code before a parallel region
  /// indexes it.
  void ensure_threads();

  /// Calling thread's scratch entry (valid inside the parallel region).
  CpuScratch& scratch();

  std::vector<std::size_t>& order() { return order_; }
  std::vector<double>& cost() { return cost_; }

 private:
  std::vector<CpuScratch> per_thread_;
  std::vector<std::size_t> order_;  ///< cost-sorted list execution order
  std::vector<double> cost_;        ///< per-list work estimate
};

/// ISA-specific tile kernels. The primary template reports "none"; opt-in
/// specializations provide `run(...)` for one (Field, kernel functor) pair
/// and are selected only on full tiles with `Fast = true` (treecode paths).
template <bool Field, typename K>
struct TileSimd {
  static constexpr bool kAvailable = false;
};

#if defined(__AVX512F__)

namespace detail {

/// 1/sqrt(a) from vrsqrt14pd (relative error < 2^-14) refined by two
/// Newton-Raphson steps y <- y(3/2 - a y^2 / 2): error ~1e-16, no divider.
/// Lanes where a == 0 are zeroed by `ok`.
inline __m512d masked_rsqrt_nr2(__m512d a, __mmask8 ok) {
  const __m512d half = _mm512_set1_pd(0.5);
  const __m512d three_halves = _mm512_set1_pd(1.5);
  const __m512d ha = _mm512_mul_pd(half, a);
  __m512d y = _mm512_rsqrt14_pd(a);
  y = _mm512_mul_pd(
      y, _mm512_fnmadd_pd(_mm512_mul_pd(ha, y), y, three_halves));
  y = _mm512_mul_pd(
      y, _mm512_fnmadd_pd(_mm512_mul_pd(ha, y), y, three_halves));
  return _mm512_maskz_mov_pd(ok, y);
}

}  // namespace detail

/// Coulomb potential tile: 16 targets in two zmm accumulator registers.
template <>
struct TileSimd<false, CoulombKernel> {
  static constexpr bool kAvailable = true;

  static void run(const double* tx, const double* ty, const double* tz,
                  const double* sx, const double* sy, const double* sz,
                  const double* sq, std::size_t ns, CoulombKernel,
                  double* phi, double*, double*, double*) {
    const __m512d zero = _mm512_setzero_pd();
    const __m512d tx0 = _mm512_loadu_pd(tx), tx1 = _mm512_loadu_pd(tx + 8);
    const __m512d ty0 = _mm512_loadu_pd(ty), ty1 = _mm512_loadu_pd(ty + 8);
    const __m512d tz0 = _mm512_loadu_pd(tz), tz1 = _mm512_loadu_pd(tz + 8);
    __m512d acc0 = zero, acc1 = zero;
    for (std::size_t j = 0; j < ns; ++j) {
      const __m512d xj = _mm512_set1_pd(sx[j]);
      const __m512d yj = _mm512_set1_pd(sy[j]);
      const __m512d zj = _mm512_set1_pd(sz[j]);
      const __m512d qj = _mm512_set1_pd(sq[j]);

      __m512d dx = _mm512_sub_pd(tx0, xj);
      __m512d dy = _mm512_sub_pd(ty0, yj);
      __m512d dz = _mm512_sub_pd(tz0, zj);
      __m512d r2 = _mm512_fmadd_pd(
          dx, dx, _mm512_fmadd_pd(dy, dy, _mm512_mul_pd(dz, dz)));
      acc0 = _mm512_fmadd_pd(
          detail::masked_rsqrt_nr2(r2,
                                   _mm512_cmp_pd_mask(r2, zero, _CMP_GT_OQ)),
          qj, acc0);

      dx = _mm512_sub_pd(tx1, xj);
      dy = _mm512_sub_pd(ty1, yj);
      dz = _mm512_sub_pd(tz1, zj);
      r2 = _mm512_fmadd_pd(
          dx, dx, _mm512_fmadd_pd(dy, dy, _mm512_mul_pd(dz, dz)));
      acc1 = _mm512_fmadd_pd(
          detail::masked_rsqrt_nr2(r2,
                                   _mm512_cmp_pd_mask(r2, zero, _CMP_GT_OQ)),
          qj, acc1);
    }
    _mm512_storeu_pd(phi, _mm512_add_pd(_mm512_loadu_pd(phi), acc0));
    _mm512_storeu_pd(phi + 8, _mm512_add_pd(_mm512_loadu_pd(phi + 8), acc1));
  }
};

/// Coulomb potential+field tile: slope = -1/r^3 = -(1/sqrt(r2))^3, so the
/// whole contribution is rsqrt-only — no divider at all.
template <>
struct TileSimd<true, CoulombGradKernel> {
  static constexpr bool kAvailable = true;

  static void run(const double* tx, const double* ty, const double* tz,
                  const double* sx, const double* sy, const double* sz,
                  const double* sq, std::size_t ns, CoulombGradKernel,
                  double* phi, double* ex, double* ey, double* ez) {
    const __m512d zero = _mm512_setzero_pd();
    const __m512d tx0 = _mm512_loadu_pd(tx), tx1 = _mm512_loadu_pd(tx + 8);
    const __m512d ty0 = _mm512_loadu_pd(ty), ty1 = _mm512_loadu_pd(ty + 8);
    const __m512d tz0 = _mm512_loadu_pd(tz), tz1 = _mm512_loadu_pd(tz + 8);
    __m512d p0 = zero, p1 = zero;
    __m512d x0 = zero, x1 = zero;
    __m512d y0 = zero, y1 = zero;
    __m512d z0 = zero, z1 = zero;
    for (std::size_t j = 0; j < ns; ++j) {
      const __m512d xj = _mm512_set1_pd(sx[j]);
      const __m512d yj = _mm512_set1_pd(sy[j]);
      const __m512d zj = _mm512_set1_pd(sz[j]);
      const __m512d qj = _mm512_set1_pd(sq[j]);

      __m512d dx = _mm512_sub_pd(tx0, xj);
      __m512d dy = _mm512_sub_pd(ty0, yj);
      __m512d dz = _mm512_sub_pd(tz0, zj);
      __m512d r2 = _mm512_fmadd_pd(
          dx, dx, _mm512_fmadd_pd(dy, dy, _mm512_mul_pd(dz, dz)));
      __m512d inv_r = detail::masked_rsqrt_nr2(
          r2, _mm512_cmp_pd_mask(r2, zero, _CMP_GT_OQ));
      __m512d w = _mm512_mul_pd(
          qj, _mm512_mul_pd(inv_r, _mm512_mul_pd(inv_r, inv_r)));
      p0 = _mm512_fmadd_pd(inv_r, qj, p0);
      x0 = _mm512_fmadd_pd(w, dx, x0);
      y0 = _mm512_fmadd_pd(w, dy, y0);
      z0 = _mm512_fmadd_pd(w, dz, z0);

      dx = _mm512_sub_pd(tx1, xj);
      dy = _mm512_sub_pd(ty1, yj);
      dz = _mm512_sub_pd(tz1, zj);
      r2 = _mm512_fmadd_pd(
          dx, dx, _mm512_fmadd_pd(dy, dy, _mm512_mul_pd(dz, dz)));
      inv_r = detail::masked_rsqrt_nr2(
          r2, _mm512_cmp_pd_mask(r2, zero, _CMP_GT_OQ));
      w = _mm512_mul_pd(qj,
                        _mm512_mul_pd(inv_r, _mm512_mul_pd(inv_r, inv_r)));
      p1 = _mm512_fmadd_pd(inv_r, qj, p1);
      x1 = _mm512_fmadd_pd(w, dx, x1);
      y1 = _mm512_fmadd_pd(w, dy, y1);
      z1 = _mm512_fmadd_pd(w, dz, z1);
    }
    _mm512_storeu_pd(phi, _mm512_add_pd(_mm512_loadu_pd(phi), p0));
    _mm512_storeu_pd(phi + 8, _mm512_add_pd(_mm512_loadu_pd(phi + 8), p1));
    _mm512_storeu_pd(ex, _mm512_add_pd(_mm512_loadu_pd(ex), x0));
    _mm512_storeu_pd(ex + 8, _mm512_add_pd(_mm512_loadu_pd(ex + 8), x1));
    _mm512_storeu_pd(ey, _mm512_add_pd(_mm512_loadu_pd(ey), y0));
    _mm512_storeu_pd(ey + 8, _mm512_add_pd(_mm512_loadu_pd(ey + 8), y1));
    _mm512_storeu_pd(ez, _mm512_add_pd(_mm512_loadu_pd(ez), z0));
    _mm512_storeu_pd(ez + 8, _mm512_add_pd(_mm512_loadu_pd(ez + 8), z1));
  }
};

#endif  // __AVX512F__

/// One target against a source stream, vectorized across sources with a
/// simd reduction (the per-target-MAC shape, and the edge case nt == 1).
template <bool Field, typename K>
inline void accumulate_single(double tx, double ty, double tz,
                              const double* __restrict sx,
                              const double* __restrict sy,
                              const double* __restrict sz,
                              const double* __restrict sq, std::size_t ns,
                              K k, double& phi, double& ex, double& ey,
                              double& ez) {
  double accp = 0.0, accx = 0.0, accy = 0.0, accz = 0.0;
#pragma omp simd reduction(+ : accp, accx, accy, accz)
  for (std::size_t j = 0; j < ns; ++j) {
    const double dx = tx - sx[j];
    const double dy = ty - sy[j];
    const double dz = tz - sz[j];
    const double r2 = dx * dx + dy * dy + dz * dz;
    const double qj = sq[j];
    if constexpr (Field) {
      const GradValue v = grad_value_masked(k, r2);
      accp += v.g * qj;
      accx -= v.slope * dx * qj;
      accy -= v.slope * dy * qj;
      accz -= v.slope * dz * qj;
    } else {
      accp += kernel_value_masked(k, r2) * qj;
    }
  }
  phi += accp;
  if constexpr (Field) {
    ex += accx;
    ey += accy;
    ez += accz;
  }
}

/// A tile of nt <= kTargetTile targets against ns contiguous source points:
/// the unified inner kernel of every host evaluation path. `Fast` permits
/// the ISA-specific tile (treecode paths); exact callers pass false.
template <bool Field, bool Fast, typename K>
inline void accumulate_tile(const double* __restrict tx,
                            const double* __restrict ty,
                            const double* __restrict tz, std::size_t nt,
                            const double* __restrict sx,
                            const double* __restrict sy,
                            const double* __restrict sz,
                            const double* __restrict sq, std::size_t ns, K k,
                            double* __restrict phi, double* __restrict ex,
                            double* __restrict ey, double* __restrict ez) {
  if constexpr (Fast && TileSimd<Field, K>::kAvailable) {
    if (nt == kTargetTile) {
      TileSimd<Field, K>::run(tx, ty, tz, sx, sy, sz, sq, ns, k, phi, ex, ey,
                              ez);
      return;
    }
  }
  if (nt == 1) {
    accumulate_single<Field>(tx[0], ty[0], tz[0], sx, sy, sz, sq, ns, k,
                             phi[0], Field ? ex[0] : phi[0],
                             Field ? ey[0] : phi[0], Field ? ez[0] : phi[0]);
    return;
  }
  // Portable blocked form: one SIMD lane per target, sources broadcast.
  double accp[kTargetTile] = {};
  double accx[kTargetTile] = {};
  double accy[kTargetTile] = {};
  double accz[kTargetTile] = {};
  for (std::size_t j = 0; j < ns; ++j) {
    const double xj = sx[j], yj = sy[j], zj = sz[j], qj = sq[j];
#pragma omp simd
    for (std::size_t t = 0; t < nt; ++t) {
      const double dx = tx[t] - xj;
      const double dy = ty[t] - yj;
      const double dz = tz[t] - zj;
      const double r2 = dx * dx + dy * dy + dz * dz;
      if constexpr (Field) {
        const GradValue v = grad_value_masked(k, r2);
        accp[t] += v.g * qj;
        accx[t] -= v.slope * dx * qj;
        accy[t] -= v.slope * dy * qj;
        accz[t] -= v.slope * dz * qj;
      } else {
        accp[t] += kernel_value_masked(k, r2) * qj;
      }
    }
  }
  for (std::size_t t = 0; t < nt; ++t) phi[t] += accp[t];
  if constexpr (Field) {
    for (std::size_t t = 0; t < nt; ++t) ex[t] += accx[t];
    for (std::size_t t = 0; t < nt; ++t) ey[t] += accy[t];
    for (std::size_t t = 0; t < nt; ++t) ez[t] += accz[t];
  }
}

// ---- List-driven evaluators (implemented in cpu_kernels.cpp) -------------

/// Evaluate potentials (tree order) for batched targets.
std::vector<double> cpu_evaluate(const OrderedParticles& targets,
                                 const std::vector<TargetBatch>& batches,
                                 const InteractionLists& lists,
                                 const ClusterTree& tree,
                                 const OrderedParticles& sources,
                                 const ClusterMoments& moments,
                                 const KernelSpec& kernel,
                                 EngineCounters* counters = nullptr,
                                 CpuWorkspace* workspace = nullptr);

/// Ablation path: `lists` has one entry per target (per-target MAC).
std::vector<double> cpu_evaluate_per_target(const OrderedParticles& targets,
                                            const InteractionLists& lists,
                                            const ClusterTree& tree,
                                            const OrderedParticles& sources,
                                            const ClusterMoments& moments,
                                            const KernelSpec& kernel,
                                            EngineCounters* counters = nullptr,
                                            CpuWorkspace* workspace = nullptr);

/// Potential + field evaluation (tree order) for batched targets, using the
/// analytic gradient of the barycentric approximation (core/fields.hpp).
FieldResult cpu_evaluate_field(const OrderedParticles& targets,
                               const std::vector<TargetBatch>& batches,
                               const InteractionLists& lists,
                               const ClusterTree& tree,
                               const OrderedParticles& sources,
                               const ClusterMoments& moments,
                               const KernelSpec& kernel,
                               EngineCounters* counters = nullptr,
                               CpuWorkspace* workspace = nullptr);

/// Per-target-MAC potential + field evaluation.
FieldResult cpu_evaluate_field_per_target(const OrderedParticles& targets,
                                          const InteractionLists& lists,
                                          const ClusterTree& tree,
                                          const OrderedParticles& sources,
                                          const ClusterMoments& moments,
                                          const KernelSpec& kernel,
                                          EngineCounters* counters = nullptr,
                                          CpuWorkspace* workspace = nullptr);

}  // namespace bltc
