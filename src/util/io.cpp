#include "util/io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bltc {

Cloud read_cloud(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_cloud: cannot open " + path);
  Cloud cloud;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments; treat commas as whitespace.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    for (char& ch : line) {
      if (ch == ',') ch = ' ';
    }
    std::istringstream fields(line);
    double x, y, z, q;
    if (!(fields >> x)) continue;  // blank line
    if (!(fields >> y >> z >> q)) {
      throw std::runtime_error("read_cloud: malformed line " +
                               std::to_string(lineno) + " in " + path);
    }
    cloud.x.push_back(x);
    cloud.y.push_back(y);
    cloud.z.push_back(z);
    cloud.q.push_back(q);
  }
  return cloud;
}

void write_cloud(const std::string& path, const Cloud& cloud) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_cloud: cannot open " + path);
  out << "# x y z q\n";
  char buf[160];
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.17g %.17g %.17g %.17g\n", cloud.x[i],
                  cloud.y[i], cloud.z[i], cloud.q[i]);
    out << buf;
  }
  if (!out) throw std::runtime_error("write_cloud: write failed: " + path);
}

void write_values(const std::string& path,
                  const std::vector<double>& values) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_values: cannot open " + path);
  char buf[64];
  for (const double v : values) {
    std::snprintf(buf, sizeof(buf), "%.17g\n", v);
    out << buf;
  }
  if (!out) throw std::runtime_error("write_values: write failed: " + path);
}

}  // namespace bltc
