// Particle-cloud I/O: whitespace/comma-separated text files with one
// particle per line, "x y z q". Lets the standalone executable run on real
// data sets rather than only generated workloads.
#pragma once

#include <string>

#include "util/workloads.hpp"

namespace bltc {

/// Read a cloud from a text file. Each non-empty, non-comment ('#') line
/// holds x y z q (comma or whitespace separated). Throws std::runtime_error
/// on unreadable files or malformed lines.
Cloud read_cloud(const std::string& path);

/// Write a cloud in the same format (full double precision round trip).
void write_cloud(const std::string& path, const Cloud& cloud);

/// Write potentials, one value per line (aligned with the cloud order).
void write_values(const std::string& path, const std::vector<double>& values);

}  // namespace bltc
