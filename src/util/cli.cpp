#include "util/cli.hpp"

#include <cstdlib>

namespace bltc {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      order_.push_back(key);
      // A following token that is not itself an option is this key's value;
      // otherwise it is a boolean flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[i + 1];
        ++i;
      } else {
        values_[key] = "true";
      }
    } else {
      positional_.push_back(token);
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string ArgParser::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? fallback : v;
}

std::size_t ArgParser::get_size(const std::string& key,
                                std::size_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  return end == it->second.c_str() ? fallback : static_cast<std::size_t>(v);
}

int ArgParser::get_int(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  return end == it->second.c_str() ? fallback : static_cast<int>(v);
}

}  // namespace bltc
