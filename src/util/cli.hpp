// Minimal command-line option parser for the standalone executable
// (`--key value` and boolean `--flag` forms). No external dependencies.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace bltc {

/// Parses `--key value` pairs and bare `--flag`s. Unknown keys are
/// collected so the tool can reject typos.
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::size_t get_size(const std::string& key, std::size_t fallback) const;
  int get_int(const std::string& key, int fallback) const;

  /// Keys seen on the command line, in order (for typo checking against a
  /// whitelist).
  const std::vector<std::string>& keys() const { return order_; }

  /// Positional arguments (tokens not starting with --).
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace bltc
