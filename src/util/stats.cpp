#include "util/stats.hpp"

#include <cmath>

namespace bltc {

double relative_l2_error(std::span<const double> reference,
                         std::span<const double> approx) {
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double d = reference[i] - approx[i];
    num += d * d;
    den += reference[i] * reference[i];
  }
  if (den == 0.0) return std::sqrt(num);
  return std::sqrt(num / den);
}

double relative_l2_error_sampled(std::span<const double> reference,
                                 std::span<const double> approx,
                                 std::span<const std::size_t> sample) {
  double num = 0.0;
  double den = 0.0;
  for (const std::size_t i : sample) {
    const double d = reference[i] - approx[i];
    num += d * d;
    den += reference[i] * reference[i];
  }
  if (den == 0.0) return std::sqrt(num);
  return std::sqrt(num / den);
}

double max_abs_difference(std::span<const double> a,
                          std::span<const double> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::fmax(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) {
  if (k >= n || n == 0) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = (i * n) / k;
  return idx;
}

}  // namespace bltc
