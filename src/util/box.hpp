// Axis-aligned 3D bounding boxes used by cluster trees, target batches, and
// the RCB domain decomposition.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>

namespace bltc {

/// Axis-aligned box in 3D, stored as per-axis [lo, hi] intervals.
struct Box3 {
  std::array<double, 3> lo{0.0, 0.0, 0.0};
  std::array<double, 3> hi{0.0, 0.0, 0.0};

  /// A box positioned so that any union/extend resets it (lo=+inf, hi=-inf).
  static Box3 empty() {
    constexpr double inf = std::numeric_limits<double>::infinity();
    return Box3{{inf, inf, inf}, {-inf, -inf, -inf}};
  }

  /// Cube [a,b]^3.
  static Box3 cube(double a, double b) { return Box3{{a, a, a}, {b, b, b}}; }

  /// Grow the box to contain point (x, y, z).
  void extend(double x, double y, double z) {
    lo[0] = std::fmin(lo[0], x);
    lo[1] = std::fmin(lo[1], y);
    lo[2] = std::fmin(lo[2], z);
    hi[0] = std::fmax(hi[0], x);
    hi[1] = std::fmax(hi[1], y);
    hi[2] = std::fmax(hi[2], z);
  }

  std::array<double, 3> center() const {
    return {0.5 * (lo[0] + hi[0]), 0.5 * (lo[1] + hi[1]),
            0.5 * (lo[2] + hi[2])};
  }

  std::array<double, 3> lengths() const {
    return {hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]};
  }

  /// Half-diagonal: the cluster/batch radius used by the MAC.
  double radius() const {
    const auto L = lengths();
    return 0.5 * std::sqrt(L[0] * L[0] + L[1] * L[1] + L[2] * L[2]);
  }

  double longest() const {
    const auto L = lengths();
    return std::fmax(L[0], std::fmax(L[1], L[2]));
  }

  double shortest() const {
    const auto L = lengths();
    return std::fmin(L[0], std::fmin(L[1], L[2]));
  }

  /// Ratio of longest to shortest extent; infinity for degenerate boxes.
  double aspect_ratio() const;

  bool contains(double x, double y, double z) const {
    return x >= lo[0] && x <= hi[0] && y >= lo[1] && y <= hi[1] &&
           z >= lo[2] && z <= hi[2];
  }

  double volume() const {
    const auto L = lengths();
    return L[0] * L[1] * L[2];
  }

  bool valid() const {
    return lo[0] <= hi[0] && lo[1] <= hi[1] && lo[2] <= hi[2];
  }
};

/// Minimal bounding box of the points selected by `idx` within SoA arrays.
Box3 minimal_bounding_box(std::span<const double> x, std::span<const double> y,
                          std::span<const double> z,
                          std::span<const std::size_t> idx);

/// Minimal bounding box of a contiguous range [begin, end) of SoA arrays.
Box3 minimal_bounding_box_range(std::span<const double> x,
                                std::span<const double> y,
                                std::span<const double> z, std::size_t begin,
                                std::size_t end);

/// Euclidean distance between two points.
double distance(const std::array<double, 3>& a, const std::array<double, 3>& b);

}  // namespace bltc
