// Error norms and small summary statistics used to report accuracy the same
// way the paper does (relative 2-norm, optionally on a sampled subset).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bltc {

/// Relative 2-norm error, Eq. (16) of the paper:
///   E = ( sum (ref_i - approx_i)^2 / sum ref_i^2 )^{1/2}.
double relative_l2_error(std::span<const double> reference,
                         std::span<const double> approx);

/// Relative 2-norm error restricted to the entries listed in `sample`
/// (the paper samples targets for systems with >= 8M particles).
double relative_l2_error_sampled(std::span<const double> reference,
                                 std::span<const double> approx,
                                 std::span<const std::size_t> sample);

/// Max-norm of elementwise absolute difference.
double max_abs_difference(std::span<const double> a, std::span<const double> b);

/// Evenly spaced sample of k indices from [0, n); k is clamped to n.
std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

}  // namespace bltc
