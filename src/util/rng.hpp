// Deterministic, seedable RNG used by all workload generators, tests, and
// benches. SplitMix64 is small, fast, and has no shared state, which keeps
// multi-rank workload generation reproducible regardless of thread schedule.
#pragma once

#include <cstdint>

namespace bltc {

/// SplitMix64 generator (public-domain algorithm by Sebastiano Vigna).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [a, b).
  double uniform(double a, double b) { return a + (b - a) * next_double(); }

 private:
  std::uint64_t state_;
};

}  // namespace bltc
