#include "util/box.hpp"

namespace bltc {

double Box3::aspect_ratio() const {
  const double s = shortest();
  if (s <= 0.0) return std::numeric_limits<double>::infinity();
  return longest() / s;
}

Box3 minimal_bounding_box(std::span<const double> x, std::span<const double> y,
                          std::span<const double> z,
                          std::span<const std::size_t> idx) {
  Box3 box = Box3::empty();
  for (const std::size_t i : idx) box.extend(x[i], y[i], z[i]);
  return box;
}

Box3 minimal_bounding_box_range(std::span<const double> x,
                                std::span<const double> y,
                                std::span<const double> z, std::size_t begin,
                                std::size_t end) {
  Box3 box = Box3::empty();
  for (std::size_t i = begin; i < end; ++i) box.extend(x[i], y[i], z[i]);
  return box;
}

double distance(const std::array<double, 3>& a,
                const std::array<double, 3>& b) {
  const double dx = a[0] - b[0];
  const double dy = a[1] - b[1];
  const double dz = a[2] - b[2];
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

}  // namespace bltc
