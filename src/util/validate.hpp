// Input hardening shared by every public entry point (Solver, PlanCache,
// ServeFrontend): a NaN coordinate silently corrupts tree bounds (every
// comparison against it is false, so the root box collapses) and a NaN
// charge poisons all downstream potentials — reject both at the boundary
// with a message naming the entry point, the array, and the first bad index.
#pragma once

#include <span>

#include "util/workloads.hpp"

namespace bltc {

/// Throw std::invalid_argument unless every value is finite; `context` names
/// the rejecting entry point and `what` the offending array.
void require_finite(std::span<const double> values, const char* context,
                    const char* what);

/// Finite check over all four cloud arrays (x, y, z, q).
void require_finite(const Cloud& cloud, const char* context);

}  // namespace bltc
