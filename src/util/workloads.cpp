#include "util/workloads.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>

#include "util/rng.hpp"

namespace bltc {

Cloud uniform_cube(std::size_t n, std::uint64_t seed, double lo, double hi) {
  Cloud c;
  c.resize(n);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    c.x[i] = rng.uniform(lo, hi);
    c.y[i] = rng.uniform(lo, hi);
    c.z[i] = rng.uniform(lo, hi);
    c.q[i] = rng.uniform(-1.0, 1.0);
  }
  return c;
}

Cloud plummer_sphere(std::size_t n, std::uint64_t seed, double a,
                     double rmax) {
  Cloud c;
  c.resize(n);
  SplitMix64 rng(seed);
  const double mass = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Invert the Plummer cumulative mass profile M(r) = (r/a)^3/(1+(r/a)^2)^{3/2}.
    double r;
    do {
      const double m = rng.uniform(1e-10, 1.0 - 1e-10);
      r = a / std::sqrt(std::pow(m, -2.0 / 3.0) - 1.0);
    } while (r > rmax * a);
    const double u = rng.uniform(-1.0, 1.0);           // cos(polar)
    const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double s = std::sqrt(1.0 - u * u);
    c.x[i] = r * s * std::cos(phi);
    c.y[i] = r * s * std::sin(phi);
    c.z[i] = r * u;
    c.q[i] = mass;
  }
  return c;
}

Cloud sphere_surface(std::size_t n, std::uint64_t seed, double r) {
  Cloud c;
  c.resize(n);
  SplitMix64 rng(seed);
  const double golden = std::numbers::pi * (3.0 - std::sqrt(5.0));
  for (std::size_t i = 0; i < n; ++i) {
    const double t = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    const double u = 1.0 - 2.0 * t;  // cos(polar), uniform in [-1, 1]
    const double s = std::sqrt(1.0 - u * u);
    const double phi = golden * static_cast<double>(i);
    c.x[i] = r * s * std::cos(phi);
    c.y[i] = r * s * std::sin(phi);
    c.z[i] = r * u;
    c.q[i] = rng.uniform(-1.0, 1.0);
  }
  return c;
}

namespace {

/// Quantize a fraction in [0, 1) to a multiple of 2^-26 and scale into
/// [0, box): keeps lattice translations exact (see header comment).
double quantized(double frac, double box) {
  constexpr double scale = 67108864.0;  // 2^26
  double q = std::floor(frac * scale) / scale;
  if (q >= 1.0) q = 0.0;
  return q * box;
}

}  // namespace

Cloud ionic_lattice(std::size_t cells, std::uint64_t seed, double box,
                    double jitter) {
  if (cells == 0) cells = 2;
  if (cells % 2 != 0) ++cells;  // even side => exact charge neutrality
  jitter = std::fmin(std::fmax(jitter, 0.0), 1.0);  // keep sites in-cell
  Cloud c;
  c.resize(cells * cells * cells);
  SplitMix64 rng(seed);
  const double h = 1.0 / static_cast<double>(cells);  // site spacing / box
  std::size_t p = 0;
  for (std::size_t i = 0; i < cells; ++i) {
    for (std::size_t j = 0; j < cells; ++j) {
      for (std::size_t k = 0; k < cells; ++k, ++p) {
        const double jx = jitter * 0.5 * h * rng.uniform(-1.0, 1.0);
        const double jy = jitter * 0.5 * h * rng.uniform(-1.0, 1.0);
        const double jz = jitter * 0.5 * h * rng.uniform(-1.0, 1.0);
        c.x[p] = quantized((static_cast<double>(i) + 0.5) * h + jx, box);
        c.y[p] = quantized((static_cast<double>(j) + 0.5) * h + jy, box);
        c.z[p] = quantized((static_cast<double>(k) + 0.5) * h + jz, box);
        c.q[p] = ((i + j + k) % 2 == 0) ? 1.0 : -1.0;
      }
    }
  }
  return c;
}

Cloud screened_plasma(std::size_t n, std::uint64_t seed, double box) {
  Cloud c;
  c.resize(n);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    c.x[i] = quantized(rng.next_double(), box);
    c.y[i] = quantized(rng.next_double(), box);
    c.z[i] = quantized(rng.next_double(), box);
    c.q[i] = (i % 2 == 0) ? 1.0 : -1.0;
  }
  return c;
}

Cloud ionic_melt(std::size_t n, std::uint64_t seed, double box) {
  Cloud c;
  c.resize(n);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    c.x[i] = quantized(rng.next_double(), box);
    c.y[i] = quantized(rng.next_double(), box);
    c.z[i] = quantized(rng.next_double(), box);
    // 2:1 mix of divalent cations and monovalent anions: every third
    // particle is a -1 anion, the rest are +2 cations, so the net charge
    // grows linearly with n — deliberately non-neutral.
    c.q[i] = (i % 3 == 2) ? -1.0 : 2.0;
  }
  return c;
}

RequestStorm request_storm(const StormSpec& spec, std::uint64_t seed) {
  RequestStorm storm;
  storm.box = spec.box;
  SplitMix64 rng(seed);

  const auto even = [](std::size_t n) {
    n = std::max<std::size_t>(2, n);
    return n + (n % 2);
  };
  const std::size_t num_shared = std::max<std::size_t>(1, spec.num_shared);
  for (std::size_t i = 0; i < num_shared; ++i) {
    storm.clouds.push_back(
        screened_plasma(even(spec.shared_size), rng.next_u64(), spec.box));
  }

  storm.requests.reserve(spec.num_requests);
  for (std::size_t r = 0; r < spec.num_requests; ++r) {
    StormRequest req;
    const bool shared = rng.next_double() < spec.shared_fraction;
    const bool periodic = rng.next_double() < spec.periodic_fraction;
    req.boundary = periodic ? StormBoundary::kPeriodic : StormBoundary::kOpen;
    // The dual traversal is open-boundary only (the periodic image sum runs
    // through the batched lists).
    if (!periodic && rng.next_double() < spec.dual_fraction) {
      req.traversal = StormTraversal::kDual;
    }
    if (shared) {
      req.shared = true;
      req.cloud = rng.next_u64() % num_shared;
      if (periodic && rng.next_double() < spec.translate_fraction) {
        // Translate by an exact lattice vector: distinct storage, identical
        // wrapped coordinates (the coordinates are quantized, so the shift
        // is exact in double precision).
        Cloud translated = storm.clouds[req.cloud];
        for (int axis = 0; axis < 3; ++axis) {
          const double shift =
              (static_cast<double>(rng.next_u64() % 5) - 2.0) * spec.box;
          auto& v = axis == 0 ? translated.x
                              : (axis == 1 ? translated.y : translated.z);
          for (double& c : v) c += shift;
        }
        req.cloud = storm.clouds.size();
        req.translated = true;
        storm.clouds.push_back(std::move(translated));
      }
    } else {
      req.cloud = storm.clouds.size();
      storm.clouds.push_back(
          screened_plasma(even(spec.small_size), rng.next_u64(), spec.box));
    }
    storm.requests.push_back(req);
  }
  return storm;
}

Cloud dumbbell(std::size_t n, std::uint64_t seed, double separation) {
  Cloud c;
  c.resize(n);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double off = (i % 2 == 0) ? -0.5 * separation : 0.5 * separation;
    c.x[i] = rng.uniform(-1.0, 1.0) + off;
    c.y[i] = rng.uniform(-1.0, 1.0);
    c.z[i] = rng.uniform(-1.0, 1.0);
    c.q[i] = rng.uniform(-1.0, 1.0);
  }
  return c;
}

}  // namespace bltc
