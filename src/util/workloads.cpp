#include "util/workloads.hpp"

#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace bltc {

Cloud uniform_cube(std::size_t n, std::uint64_t seed, double lo, double hi) {
  Cloud c;
  c.resize(n);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    c.x[i] = rng.uniform(lo, hi);
    c.y[i] = rng.uniform(lo, hi);
    c.z[i] = rng.uniform(lo, hi);
    c.q[i] = rng.uniform(-1.0, 1.0);
  }
  return c;
}

Cloud plummer_sphere(std::size_t n, std::uint64_t seed, double a,
                     double rmax) {
  Cloud c;
  c.resize(n);
  SplitMix64 rng(seed);
  const double mass = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Invert the Plummer cumulative mass profile M(r) = (r/a)^3/(1+(r/a)^2)^{3/2}.
    double r;
    do {
      const double m = rng.uniform(1e-10, 1.0 - 1e-10);
      r = a / std::sqrt(std::pow(m, -2.0 / 3.0) - 1.0);
    } while (r > rmax * a);
    const double u = rng.uniform(-1.0, 1.0);           // cos(polar)
    const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double s = std::sqrt(1.0 - u * u);
    c.x[i] = r * s * std::cos(phi);
    c.y[i] = r * s * std::sin(phi);
    c.z[i] = r * u;
    c.q[i] = mass;
  }
  return c;
}

Cloud sphere_surface(std::size_t n, std::uint64_t seed, double r) {
  Cloud c;
  c.resize(n);
  SplitMix64 rng(seed);
  const double golden = std::numbers::pi * (3.0 - std::sqrt(5.0));
  for (std::size_t i = 0; i < n; ++i) {
    const double t = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    const double u = 1.0 - 2.0 * t;  // cos(polar), uniform in [-1, 1]
    const double s = std::sqrt(1.0 - u * u);
    const double phi = golden * static_cast<double>(i);
    c.x[i] = r * s * std::cos(phi);
    c.y[i] = r * s * std::sin(phi);
    c.z[i] = r * u;
    c.q[i] = rng.uniform(-1.0, 1.0);
  }
  return c;
}

Cloud dumbbell(std::size_t n, std::uint64_t seed, double separation) {
  Cloud c;
  c.resize(n);
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double off = (i % 2 == 0) ? -0.5 * separation : 0.5 * separation;
    c.x[i] = rng.uniform(-1.0, 1.0) + off;
    c.y[i] = rng.uniform(-1.0, 1.0);
    c.z[i] = rng.uniform(-1.0, 1.0);
    c.q[i] = rng.uniform(-1.0, 1.0);
  }
  return c;
}

}  // namespace bltc
