#include "util/failpoints.hpp"

#include <map>
#include <mutex>

#include "util/rng.hpp"

namespace bltc {

FailpointError::FailpointError(const std::string& site, std::uint64_t hit)
    : std::runtime_error("failpoint '" + site + "' tripped on hit " +
                         std::to_string(hit)),
      site_(site),
      hit_(hit) {}

namespace failpoints {

std::atomic<int> g_armed{0};

namespace {

struct Site {
  FailpointConfig config;
  bool armed = false;
  std::uint64_t hits = 0;
  std::uint64_t trips = 0;
  SplitMix64 rng{1};
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, Site>& registry() {
  static std::map<std::string, Site> sites;
  return sites;
}

}  // namespace

std::vector<const char*> all_sites() {
  return {sites::kPlanCacheBuild,          sites::kExecContextAcquire,
          sites::kSimmpiGet,               sites::kSimmpiPut,
          sites::kGpuStage,                sites::kPlanIncrementalRebucket,
          sites::kGpuPartialRestage};
}

void hit_slow(const char* site) {
  std::uint64_t hit_index = 0;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    auto it = registry().find(site);
    if (it == registry().end() || !it->second.armed) return;
    Site& s = it->second;
    hit_index = ++s.hits;
    const bool nth = s.config.fail_on_hit != 0 &&
                     hit_index == s.config.fail_on_hit;
    // Draw the coin even on an Nth-hit trip so the probability stream stays
    // aligned with the hit count (run-to-run determinism).
    const bool coin = s.config.probability > 0.0 &&
                      s.rng.next_double() < s.config.probability;
    if (!nth && !coin) return;
    if (s.config.max_trips != 0 && s.trips >= s.config.max_trips) return;
    ++s.trips;
  }
  throw FailpointError(site, hit_index);
}

FailpointStats stats(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = registry().find(site);
  if (it == registry().end()) return {};
  return {it->second.hits, it->second.trips};
}

void reset_all() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  int disarmed = 0;
  for (auto& [name, site] : registry()) {
    if (site.armed) ++disarmed;
  }
  registry().clear();
  if (disarmed > 0) g_armed.fetch_sub(disarmed, std::memory_order_relaxed);
}

FailpointScope::FailpointScope(std::string site, FailpointConfig config)
    : site_(std::move(site)) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  Site& s = registry()[site_];
  if (!s.armed) g_armed.fetch_add(1, std::memory_order_relaxed);
  s.config = config;
  s.armed = true;
  s.hits = 0;
  s.trips = 0;
  s.rng = SplitMix64(config.seed);
}

FailpointScope::~FailpointScope() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = registry().find(site_);
  if (it != registry().end() && it->second.armed) {
    it->second.armed = false;
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace failpoints
}  // namespace bltc
