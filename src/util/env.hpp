// Environment-variable overrides so the bench harness can be scaled from
// quick smoke runs up to paper-scale sweeps without recompiling.
#pragma once

#include <cstddef>
#include <string>

namespace bltc {

/// Integer environment override: returns `fallback` when `name` is unset or
/// unparsable.
std::size_t env_size(const char* name, std::size_t fallback);

/// Floating-point environment override.
double env_double(const char* name, double fallback);

/// String environment override.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace bltc
