// Deterministic, seeded fault injection for testing recovery paths.
//
// A *failpoint* is a named site in production code (`failpoint("site")`)
// that normally costs one relaxed atomic load and does nothing. Tests and
// chaos harnesses arm a site with a `FailpointScope`, after which each pass
// through the site may throw a `FailpointError` — either with a seeded
// per-site probability (two runs with the same seed trip on exactly the
// same hits, regardless of wall clock) or deterministically on the Nth hit.
// `FailpointError` derives from `TransientError`, the tag retry layers key
// on: anything a failpoint injects is by construction retryable.
//
// Thread safety: the registry is mutex-protected and the disarmed fast path
// is a single atomic, so sites may be hit from any number of threads (the
// serving and simmpi suites run them under TSan). Determinism under
// concurrency is per-site *hit-count* determinism: the set of hit indices
// that trip is a pure function of (seed, probability), though which thread
// draws a given index depends on the schedule.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace bltc {

/// Tag base for failures that are safe to retry (the operation did not
/// commit partial state). The frontend's retry-with-backoff only retries
/// exceptions that also derive from this.
class TransientError {
 public:
  virtual ~TransientError() = default;
};

/// Thrown by a tripped failpoint. `site()` names the site and `hit()` is
/// the 1-based hit index that tripped, so tests can assert exactly which
/// pass failed.
class FailpointError : public std::runtime_error, public TransientError {
 public:
  FailpointError(const std::string& site, std::uint64_t hit);
  const std::string& site() const { return site_; }
  std::uint64_t hit() const { return hit_; }

 private:
  std::string site_;
  std::uint64_t hit_;
};

/// Per-site trip policy. Probability and fail_on_hit compose: a hit trips
/// if it is the designated Nth hit *or* the seeded coin comes up.
struct FailpointConfig {
  double probability = 0.0;     ///< seeded per-hit trip probability
  std::uint64_t seed = 1;       ///< per-site RNG seed (SplitMix64)
  std::uint64_t fail_on_hit = 0;  ///< 1-based hit index to trip on (0 = off)
  std::uint64_t max_trips = 0;    ///< stop tripping after this many (0 = no cap)
};

/// Observed activity at one site since it was last armed.
struct FailpointStats {
  std::uint64_t hits = 0;   ///< passes through the site while armed
  std::uint64_t trips = 0;  ///< hits that threw
};

namespace failpoints {

/// Canonical site names wired into the codebase (the `--chaos` storm arms
/// all of them).
namespace sites {
inline constexpr const char* kPlanCacheBuild = "plan_cache.build";
inline constexpr const char* kExecContextAcquire = "exec_context.acquire";
inline constexpr const char* kSimmpiGet = "simmpi.get";
inline constexpr const char* kSimmpiPut = "simmpi.put";
inline constexpr const char* kGpuStage = "gpusim.stage";
inline constexpr const char* kPlanIncrementalRebucket =
    "plan.incremental_rebucket";
inline constexpr const char* kGpuPartialRestage = "gpusim.partial_restage";
}  // namespace sites

/// Every wired site name (for chaos harnesses that arm the whole surface).
std::vector<const char*> all_sites();

/// Number of armed sites; the disarmed fast path reads only this.
extern std::atomic<int> g_armed;

/// Slow path: registry lookup + trip decision. Call through `hit`.
void hit_slow(const char* site);

/// Production call: free when nothing is armed anywhere.
inline void hit(const char* site) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return;
  hit_slow(site);
}

/// Stats for `site` accumulated since it was armed (zeros when unknown).
FailpointStats stats(const std::string& site);

/// Disarm every site and drop all counters (test isolation).
void reset_all();

/// RAII activation: arms `site` with `config` on construction (resetting
/// its counters and RNG), disarms it on destruction. Scopes for one site
/// do not nest — re-arming an armed site replaces its config.
class FailpointScope {
 public:
  FailpointScope(std::string site, FailpointConfig config);
  ~FailpointScope();
  FailpointScope(const FailpointScope&) = delete;
  FailpointScope& operator=(const FailpointScope&) = delete;

  FailpointStats stats() const { return failpoints::stats(site_); }
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

}  // namespace failpoints

/// Site marker used by production code; see failpoints::hit.
inline void failpoint(const char* site) { failpoints::hit(site); }

}  // namespace bltc
