#include "util/env.hpp"

#include <cstdlib>

namespace bltc {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<std::size_t>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::string(v);
}

}  // namespace bltc
