#include "util/validate.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace bltc {

void require_finite(std::span<const double> values, const char* context,
                    const char* what) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      throw std::invalid_argument(
          std::string(context) + ": non-finite " + what + " at index " +
          std::to_string(i) + " (" +
          (std::isnan(values[i]) ? "NaN" : "Inf") + ")");
    }
  }
}

void require_finite(const Cloud& cloud, const char* context) {
  require_finite(cloud.x, context, "x coordinate");
  require_finite(cloud.y, context, "y coordinate");
  require_finite(cloud.z, context, "z coordinate");
  require_finite(cloud.q, context, "charge");
}

}  // namespace bltc
