// Workload generators for the paper's experiments and the domain examples:
// uniform particles in a cube (all paper experiments), a Plummer sphere
// (irregular astrophysical distribution, listed by the paper as future work),
// and quadrature points on a sphere surface (boundary-element scenario).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bltc {

/// Structure-of-arrays particle cloud with charges.
struct Cloud {
  std::vector<double> x, y, z, q;

  std::size_t size() const { return x.size(); }
  void resize(std::size_t n) {
    x.resize(n);
    y.resize(n);
    z.resize(n);
    q.resize(n);
  }
};

/// N particles uniformly random in [lo, hi]^3 with charges uniform in
/// [-1, 1] — the distribution used by every experiment in the paper (§4).
Cloud uniform_cube(std::size_t n, std::uint64_t seed, double lo = -1.0,
                   double hi = 1.0);

/// N particles drawn from a Plummer model (scale radius a), a centrally
/// concentrated distribution typical of star clusters. Charges are set to
/// equal masses 1/N. Positions are clamped to radius `rmax * a`.
Cloud plummer_sphere(std::size_t n, std::uint64_t seed, double a = 1.0,
                     double rmax = 20.0);

/// N quasi-uniform points on the sphere of radius r (Fibonacci lattice),
/// with charges uniform in [-1, 1]; models boundary-element quadrature
/// points on a molecular surface.
Cloud sphere_surface(std::size_t n, std::uint64_t seed, double r = 1.0);

/// Two well-separated uniform clusters (a "dumbbell"); stresses the MAC and
/// the adaptive tree with a strongly non-uniform box population.
Cloud dumbbell(std::size_t n, std::uint64_t seed, double separation = 6.0);

// ---- Periodic workloads --------------------------------------------------
// Both generators fill the half-open cube [0, box)^3 — the canonical
// primary cell of a periodic run — and quantize coordinates to multiples of
// box * 2^-26. Quantization makes lattice translations x + i*box exact in
// double precision (for |i| up to ~2^25 and power-of-two boxes), which is
// what lets translation-invariance tests demand bit-for-bit equality.

/// NaCl-style cubic ionic lattice: `cells`^3 sites at cell centers with
/// alternating charges (-1)^(i+j+k), optionally jittered by a uniform
/// displacement of up to `jitter` * (half the site spacing) per axis
/// (seeded, deterministic). `cells` is rounded up to the next even number
/// so the lattice is exactly charge neutral — the Coulomb-periodic
/// requirement. Returns cells^3 particles.
Cloud ionic_lattice(std::size_t cells, std::uint64_t seed, double box = 1.0,
                    double jitter = 0.0);

/// Homogeneous two-species screened plasma: n particles uniform in
/// [0, box)^3 with alternating charges +1/-1 (exactly neutral for even n).
/// The Yukawa kernel is the physical pairing (Debye screening); its image
/// sum converges absolutely, so neutrality is not required there.
Cloud screened_plasma(std::size_t n, std::uint64_t seed, double box = 1.0);

/// Non-neutral ionic melt: n particles uniform in [0, box)^3 carrying a
/// 2:1 mix of +2 and -1 charges (think a molten-salt cell holding only the
/// cations of a divalent species plus half the compensating anions), so the
/// cell carries net charge n - floor(n/3)*3-dependent surplus > 0. Legal
/// only under BoundaryConditions::kPeriodicMesh, whose tinfoil /
/// uniform-background convention neutralizes the net monopole on the mesh
/// (legacy kPeriodic rejects it). Coordinates are quantized like the other
/// periodic workloads so lattice translations stay exact.
Cloud ionic_melt(std::size_t n, std::uint64_t seed, double box = 1.0);

// ---- Request storms ------------------------------------------------------
// Serving-shaped workload: a seeded stream of evaluation requests over a
// mix of a few large *shared* clouds (requests repeat them — plan-cache
// hits after warmup), many unique small clouds (every request plans), and
// lattice-translated copies of shared periodic clouds (distinct storage,
// identical wrapped coordinates — the wrap-aware cache-hit case). Clouds
// are generated in [0, box)^3 with quantized coordinates so translations
// are exact; all cloud sizes are rounded up to even for charge neutrality.
// This layer is pure geometry + mix tags: mapping a tag to treecode
// parameters/kernels happens in the serving layer (serve/storm.hpp), which
// keeps util/ free of core types.

/// Boundary/traversal mix tag of one storm request.
enum class StormBoundary { kOpen, kPeriodic };
enum class StormTraversal { kBatched, kDual };

/// Storm shape. Fractions are probabilities per request.
struct StormSpec {
  std::size_t num_requests = 64;
  std::size_t num_shared = 3;       ///< large clouds requests keep revisiting
  std::size_t shared_size = 4096;   ///< particles per shared cloud
  std::size_t small_size = 256;     ///< particles per unique small cloud
  double shared_fraction = 0.5;     ///< request targets a shared cloud
  double translate_fraction = 0.5;  ///< periodic shared request arrives
                                    ///< lattice-translated
  double periodic_fraction = 0.25;
  double dual_fraction = 0.25;      ///< dual traversal (open requests only)
  double box = 1.0;                 ///< periodic cell edge
};

/// One request of the storm: which cloud plus its mix tags.
struct StormRequest {
  std::size_t cloud = 0;    ///< index into RequestStorm::clouds
  StormBoundary boundary = StormBoundary::kOpen;
  StormTraversal traversal = StormTraversal::kBatched;
  bool shared = false;      ///< revisits a shared cloud's plan
  bool translated = false;  ///< lattice-translated shared periodic cloud
};

/// A generated storm. `clouds` is stable storage for the whole run (the
/// serving layer's requests point into it); the first `num_shared` entries
/// are the shared clouds.
struct RequestStorm {
  std::vector<Cloud> clouds;
  std::vector<StormRequest> requests;
  double box = 1.0;
};

/// Generate a storm (deterministic in `seed`).
RequestStorm request_storm(const StormSpec& spec, std::uint64_t seed);

}  // namespace bltc
