// Workload generators for the paper's experiments and the domain examples:
// uniform particles in a cube (all paper experiments), a Plummer sphere
// (irregular astrophysical distribution, listed by the paper as future work),
// and quadrature points on a sphere surface (boundary-element scenario).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bltc {

/// Structure-of-arrays particle cloud with charges.
struct Cloud {
  std::vector<double> x, y, z, q;

  std::size_t size() const { return x.size(); }
  void resize(std::size_t n) {
    x.resize(n);
    y.resize(n);
    z.resize(n);
    q.resize(n);
  }
};

/// N particles uniformly random in [lo, hi]^3 with charges uniform in
/// [-1, 1] — the distribution used by every experiment in the paper (§4).
Cloud uniform_cube(std::size_t n, std::uint64_t seed, double lo = -1.0,
                   double hi = 1.0);

/// N particles drawn from a Plummer model (scale radius a), a centrally
/// concentrated distribution typical of star clusters. Charges are set to
/// equal masses 1/N. Positions are clamped to radius `rmax * a`.
Cloud plummer_sphere(std::size_t n, std::uint64_t seed, double a = 1.0,
                     double rmax = 20.0);

/// N quasi-uniform points on the sphere of radius r (Fibonacci lattice),
/// with charges uniform in [-1, 1]; models boundary-element quadrature
/// points on a molecular surface.
Cloud sphere_surface(std::size_t n, std::uint64_t seed, double r = 1.0);

/// Two well-separated uniform clusters (a "dumbbell"); stresses the MAC and
/// the adaptive tree with a strongly non-uniform box population.
Cloud dumbbell(std::size_t n, std::uint64_t seed, double separation = 6.0);

// ---- Periodic workloads --------------------------------------------------
// Both generators fill the half-open cube [0, box)^3 — the canonical
// primary cell of a periodic run — and quantize coordinates to multiples of
// box * 2^-26. Quantization makes lattice translations x + i*box exact in
// double precision (for |i| up to ~2^25 and power-of-two boxes), which is
// what lets translation-invariance tests demand bit-for-bit equality.

/// NaCl-style cubic ionic lattice: `cells`^3 sites at cell centers with
/// alternating charges (-1)^(i+j+k), optionally jittered by a uniform
/// displacement of up to `jitter` * (half the site spacing) per axis
/// (seeded, deterministic). `cells` is rounded up to the next even number
/// so the lattice is exactly charge neutral — the Coulomb-periodic
/// requirement. Returns cells^3 particles.
Cloud ionic_lattice(std::size_t cells, std::uint64_t seed, double box = 1.0,
                    double jitter = 0.0);

/// Homogeneous two-species screened plasma: n particles uniform in
/// [0, box)^3 with alternating charges +1/-1 (exactly neutral for even n).
/// The Yukawa kernel is the physical pairing (Debye screening); its image
/// sum converges absolutely, so neutrality is not required there.
Cloud screened_plasma(std::size_t n, std::uint64_t seed, double box = 1.0);

}  // namespace bltc
