// Workload generators for the paper's experiments and the domain examples:
// uniform particles in a cube (all paper experiments), a Plummer sphere
// (irregular astrophysical distribution, listed by the paper as future work),
// and quadrature points on a sphere surface (boundary-element scenario).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bltc {

/// Structure-of-arrays particle cloud with charges.
struct Cloud {
  std::vector<double> x, y, z, q;

  std::size_t size() const { return x.size(); }
  void resize(std::size_t n) {
    x.resize(n);
    y.resize(n);
    z.resize(n);
    q.resize(n);
  }
};

/// N particles uniformly random in [lo, hi]^3 with charges uniform in
/// [-1, 1] — the distribution used by every experiment in the paper (§4).
Cloud uniform_cube(std::size_t n, std::uint64_t seed, double lo = -1.0,
                   double hi = 1.0);

/// N particles drawn from a Plummer model (scale radius a), a centrally
/// concentrated distribution typical of star clusters. Charges are set to
/// equal masses 1/N. Positions are clamped to radius `rmax * a`.
Cloud plummer_sphere(std::size_t n, std::uint64_t seed, double a = 1.0,
                     double rmax = 20.0);

/// N quasi-uniform points on the sphere of radius r (Fibonacci lattice),
/// with charges uniform in [-1, 1]; models boundary-element quadrature
/// points on a molecular surface.
Cloud sphere_surface(std::size_t n, std::uint64_t seed, double r = 1.0);

/// Two well-separated uniform clusters (a "dumbbell"); stresses the MAC and
/// the adaptive tree with a strongly non-uniform box population.
Cloud dumbbell(std::size_t n, std::uint64_t seed, double separation = 6.0);

}  // namespace bltc
