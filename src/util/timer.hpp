// Wall-clock timing used for the setup/precompute/compute phase breakdown.
#pragma once

#include <chrono>

namespace bltc {

/// Monotonic wall-clock stopwatch; `seconds()` reads elapsed time since the
/// last `reset()` (or construction) without stopping the clock.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bltc
