// Particle-mesh Ewald far field (smooth PME) behind the plan/execute
// lifecycle.
//
// Under BoundaryConditions::kPeriodicMesh the periodic Coulomb kernel is
// split 1/r = erfc(alpha r)/r + erf(alpha r)/r. The screened short-range
// part runs through the existing treecode traversals (KernelType::
// kCoulombErfc) with a range cutoff that prunes everything the screening
// already killed, so the near field costs ~an open-boundary run instead of
// the 4.4-6.6x image-shell multiplier. The smooth long-range part is solved
// here: cardinal-B-spline charge spreading onto a power-of-two grid, one
// real-to-complex FFT, a pointwise multiply by the screened Green's
// function
//     G(k) = (4 pi / V) exp(-k^2 / 4 alpha^2) / k^2 / |D(m)|^2
// (the |D|^2 factor deconvolves both spline passes; the k = 0 term is
// dropped -- the tinfoil / uniform-background convention, which makes
// non-neutral clouds legal), the inverse FFT, and spline interpolation of
// potentials and analytic-gradient fields at the targets.
//
// Lifecycle mirrors SourcePlanState: build once over the tree-ordered
// sources, `update_charges` re-accumulates the grid from cached geometry
// weights (bit-identical to a fresh spread), `update_positions` applies
// O(moved) subtract/re-spread/add deltas over exactly the rewritten slot
// ranges, and `solve()` runs the FFT pipeline once per mutation.
// Interpolation (`add_potential` / `add_field`) is const and re-entrant, so
// a solved MeshPlan can be shared by the serving layer like any other
// compiled artifact.
//
// Determinism: spreading is slab-owned -- every x-plane of the grid is
// accumulated by exactly one thread, in a canonical (plane offset, slot)
// order -- so results are independent of the thread count.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/particles.hpp"
#include "core/plan.hpp"
#include "core/solver.hpp"
#include "mesh/fft.hpp"

namespace bltc::mesh {

/// Everything the Ewald split needs agreed between the near and far field.
struct MeshTuning {
  int order = 6;          ///< B-spline order p (even: 4, 6, or 8)
  double alpha = 0.0;     ///< Ewald splitting parameter
  double r_cut = 0.0;     ///< near-field range cutoff (erfc horizon)
  std::size_t nx = 0, ny = 0, nz = 0;  ///< grid dimensions (powers of two)
  double target_error = 0.0;  ///< the split tolerance the tuner aimed at
};

/// Derive the Ewald split from the treecode parameters. The split tolerance
/// is tied to the nominal (theta, degree) treecode error target so the mesh
/// never dominates the error budget; explicit `ewald_alpha` /
/// `mesh_spacing` / `mesh_order` overrides in `params` win over the tuner.
/// The cutoff is capped at 0.45 * min domain length so a shells=1 shift
/// table always covers every image inside it.
MeshTuning tune_mesh(const TreecodeParams& params);

/// The screened near-field kernel the engines evaluate under
/// kPeriodicMesh: erfc(alpha r)/r with the tuned alpha.
KernelSpec mesh_near_kernel(const TreecodeParams& params);

/// The compiled far-field artifact: grid, cached per-slot spreading
/// weights, screened Green's table, and (after solve()) the potential grid.
class MeshPlan {
 public:
  /// Build over the tree-ordered, domain-wrapped sources of a source plan.
  MeshPlan(const OrderedParticles& sources, const TreecodeParams& params);

  /// Charges changed, geometry did not: refresh the cached charges and
  /// re-accumulate the grid from the cached weights in canonical order --
  /// bit-identical to a fresh build over the same geometry.
  void update_charges(const OrderedParticles& sources);

  /// Positions changed in exactly the tree-order slot ranges
  /// `moved_ranges` (half-open): subtract each rewritten slot's cached
  /// contribution, recompute its weights from the new coordinates, and add
  /// it back -- O(moved * p^3) grid work.
  void update_positions(
      const OrderedParticles& sources,
      std::span<const std::pair<std::size_t, std::size_t>> moved_ranges);

  /// Run spread deltas' consequence: forward FFT, Green multiply, inverse
  /// FFT. No-op when nothing changed since the last solve.
  void solve();
  bool solved() const { return !dirty_; }

  /// Interpolate the far-field potential at `targets` (wrapped, any order)
  /// and add it into `phi` (one entry per target, same order). Includes the
  /// Ewald self-term correction for targets coincident with sources and the
  /// non-neutral uniform-background term. Const and re-entrant; requires
  /// solved().
  void add_potential(const OrderedParticles& targets,
                     std::span<double> phi) const;

  /// Interpolate potential and field E = -grad phi via analytic B-spline
  /// derivatives, adding into `out` (sized to targets). Requires solved().
  void add_field(const OrderedParticles& targets, FieldResult& out) const;

  const MeshTuning& tuning() const { return tuning_; }
  std::size_t grid_points() const { return nx_ * ny_ * nz_; }
  std::size_t num_sources() const { return charge_.size(); }
  /// Monotonic mutation counter: bumps on every build/update, so device
  /// engines can key their staged mesh state on it.
  std::uint64_t version() const { return version_; }
  /// Heap footprint (cache budget accounting).
  std::size_t bytes() const;

  /// Drain the spread/FFT seconds accumulated by lifecycle calls since the
  /// last drain (attributed by the Solver to its next evaluation).
  void take_pending_seconds(double* spread_seconds, double* fft_seconds);

 private:
  struct Coincident {
    std::array<std::uint64_t, 3> key;
    double q = 0.0;
  };

  void cache_slot(std::size_t slot, const OrderedParticles& sources);
  void accumulate_all();
  void apply_slot_deltas(std::span<const std::uint32_t> slots, double sign,
                         bool use_cache);
  void rebuild_buckets();
  double coincident_charge(double x, double y, double z) const;

  MeshTuning tuning_;
  Box3 domain_;
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
  double hx_ = 0.0, hy_ = 0.0, hz_ = 0.0;  ///< grid spacings
  int p_ = 0;                              ///< spline order

  // Cached per-slot spreading state (tree-order slots).
  std::vector<int> base_;         ///< 3 per slot: wrapped base grid indices
  std::vector<double> weights_;   ///< 3p per slot: wx[p], wy[p], wz[p]
  std::vector<double> charge_;    ///< cached charges
  std::vector<std::array<std::uint64_t, 3>> keys_;  ///< coord bit patterns
  /// Slab ownership: slots listed under their base x-plane, ascending.
  std::vector<std::vector<std::uint32_t>> plane_slots_;

  std::vector<double> rho_;       ///< charge grid (spread state)
  std::vector<double> phi_grid_;  ///< solved potential grid
  std::vector<double> green_;     ///< screened Green's table (half spectrum)
  std::vector<double> spec_;      ///< FFT scratch (half spectrum, complex)
  Fft3 fft_;

  std::vector<Coincident> coincident_;  ///< sorted by key (built in solve)
  double q_total_ = 0.0;
  double self_factor_ = 0.0;  ///< 2 alpha / sqrt(pi)
  double background_ = 0.0;   ///< -pi q_total / (alpha^2 V), set in solve

  bool dirty_ = true;
  std::uint64_t version_ = 0;
  std::size_t updates_since_rebuild_ = 0;
  double pending_spread_seconds_ = 0.0;
  double pending_fft_seconds_ = 0.0;
};

}  // namespace bltc::mesh
