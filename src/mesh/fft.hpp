// Dependency-free real-to-complex 3D FFT for the PME far field.
//
// The mesh solve needs exactly one transform shape: a real charge grid over
// a power-of-two (nx, ny, nz) box forward into a half spectrum, a pointwise
// multiply by the (real) screened Green's function, and the inverse back to
// a real potential grid. That shape never needs the generality (or the
// dependency) of FFTW: an iterative radix-2 Stockham autosort kernel over
// precomputed twiddles, a pack-the-reals R2C untangle along the contiguous
// z axis, and gathered complex pencils along y and x cover it in ~200 lines
// and vectorize well. Pencils are independent, so the 3D stages parallelize
// over them with OpenMP.
#pragma once

#include <cstddef>
#include <vector>

namespace bltc::mesh {

/// True for nonzero powers of two.
constexpr bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Iterative radix-2 Stockham autosort transform of one power-of-two
/// length over interleaved complex data (re, im pairs). Forward is the
/// e^{-2 pi i jk/n} DFT; `inverse` is the unnormalized conjugate transform
/// (callers fold the 1/n into their final scaling). Stockham reads one
/// buffer and writes the other each stage -- no bit-reversal pass -- so
/// both calls need a caller-provided work buffer of the same 2n doubles.
class Fft1d {
 public:
  Fft1d() = default;
  explicit Fft1d(std::size_t n);

  std::size_t size() const { return n_; }
  /// Transform `x` (2n doubles) in place; `work` is 2n doubles of scratch.
  void forward(double* x, double* work) const { run(x, work, -1.0); }
  void inverse(double* x, double* work) const { run(x, work, 1.0); }

 private:
  void run(double* x, double* work, double sign) const;

  std::size_t n_ = 0;
  /// Per-stage (cos, -sin) twiddle pairs for the forward sign, concatenated
  /// largest stage first: n/2 + n/4 + ... + 1 = n - 1 pairs.
  std::vector<double> twiddle_;
};

/// Real-to-complex 3D FFT over an (nx, ny, nz) power-of-two grid.
/// Real layout: real[(ix*ny + iy)*nz + iz] (z fastest, matching the mesh).
/// Spectrum layout: interleaved complex spec[((ix*ny + iy)*nzh + kz)*2 + c]
/// with nzh = nz/2 + 1 -- the z half spectrum; x and y keep all nx/ny bins.
class Fft3 {
 public:
  Fft3() = default;
  /// Dimensions must be powers of two, each >= 8 (the z pack needs nz/2 to
  /// itself be a transformable length). Throws std::invalid_argument.
  Fft3(std::size_t nx, std::size_t ny, std::size_t nz);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  /// Complex bins in the half spectrum: nx * ny * (nz/2 + 1).
  std::size_t spectrum_bins() const { return nx_ * ny_ * nzh_; }

  /// real (nx*ny*nz doubles) -> spec (2 * spectrum_bins() doubles).
  void forward(const double* real, double* spec) const;
  /// spec -> real, *including* the 1/(nx*ny*nz) normalization. Destroys
  /// `spec` (the y/x stages run in place over it).
  void inverse(double* spec, double* real) const;

 private:
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0, nzh_ = 0;
  Fft1d fx_, fy_, fz_;  ///< fz_ transforms nz/2 packed complex points
  /// Untangle twiddles e^{-2 pi i k/nz}, k = 0..nz/2, interleaved pairs.
  std::vector<double> untangle_;
};

}  // namespace bltc::mesh
