#include "mesh/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/precision.hpp"
#include "util/timer.hpp"

namespace bltc::mesh {
namespace {

constexpr double kPi = 3.141592653589793238462643383279502884;
constexpr int kMaxOrder = 8;

/// Solve erfc(c) = eps for c (erfc is strictly decreasing).
double inverse_erfc(double eps) {
  double lo = 0.0, hi = 30.0;
  for (int i = 0; i < 120; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (std::erfc(mid) > eps) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::size_t next_pow2_clamped(double points) {
  std::size_t k = 8;
  while (static_cast<double>(k) < points && k < 256) k <<= 1;
  return k;
}

/// Cardinal B-spline weights of order p at fractional offset f in [0, 1):
/// w[t] = M_p(u - n_t) for the p grid points n_t = floor(u) - p + 1 + t,
/// ascending t. With non-null `d`, also the derivatives M_p'(u - n_t)
/// (per grid coordinate; divide by the spacing for a spatial derivative).
/// Stable Cox-de-Boor raise from M_2, as in smooth PME.
inline void spline_weights(double f, int p, double* w, double* d) {
  double m[kMaxOrder] = {};  // m[j] = M_k(f + j) for the current order k
  m[0] = f;
  m[1] = 1.0 - f;
  for (int k = 3; k <= p; ++k) {
    if (k == p && d != nullptr) {
      // M_p'(x) = M_{p-1}(x) - M_{p-1}(x - 1); m[] still holds order p-1.
      for (int j = p - 1; j >= 0; --j) {
        const double hi = j <= p - 2 ? m[j] : 0.0;
        const double lo = j > 0 ? m[j - 1] : 0.0;
        d[p - 1 - j] = hi - lo;
      }
    }
    for (int j = k - 1; j >= 0; --j) {
      const double mj = j <= k - 2 ? m[j] : 0.0;
      const double mjm1 = j > 0 ? m[j - 1] : 0.0;
      m[j] = ((f + j) * mj + (static_cast<double>(k) - f - j) * mjm1) /
             static_cast<double>(k - 1);
    }
  }
  for (int t = 0; t < p; ++t) w[t] = m[p - 1 - t];
}

/// |D(m)|^2 per frequency for one dimension: the squared magnitude of the
/// spline Euler factor D(m) = sum_{j=0}^{p-2} M_p(j+1) e^{2 pi i m j / K}.
/// Dividing the Green's function by it (once per spline pass, so squared)
/// deconvolves the spreading/interpolation smoothing exactly at the grid
/// frequencies. Even orders keep |D| bounded away from zero at Nyquist.
std::vector<double> spline_dsq(std::size_t k_dim, int p) {
  double node[kMaxOrder] = {};  // node[j] = M_p(j), j = 0..p-1 (node[0] = 0)
  spline_weights(0.0, p, node, nullptr);
  // spline_weights returns w[t] = M_p(p - 1 - t) at f = 0; unmap to M_p(j).
  double mp[kMaxOrder] = {};
  for (int t = 0; t < p; ++t) mp[p - 1 - t] = node[t];
  std::vector<double> dsq(k_dim);
  for (std::size_t m = 0; m < k_dim; ++m) {
    double re = 0.0, im = 0.0;
    for (int j = 0; j <= p - 2; ++j) {
      const double a = 2.0 * kPi * static_cast<double>(m) *
                       static_cast<double>(j) / static_cast<double>(k_dim);
      re += mp[j + 1] * std::cos(a);
      im += mp[j + 1] * std::sin(a);
    }
    dsq[m] = re * re + im * im;
  }
  return dsq;
}

std::array<std::uint64_t, 3> coord_key(double x, double y, double z) {
  std::array<std::uint64_t, 3> key;
  std::memcpy(&key[0], &x, sizeof(double));
  std::memcpy(&key[1], &y, sizeof(double));
  std::memcpy(&key[2], &z, sizeof(double));
  return key;
}

}  // namespace

MeshTuning tune_mesh(const TreecodeParams& params) {
  if (!params.domain.valid()) {
    throw std::invalid_argument("tune_mesh: kPeriodicMesh requires a valid "
                                "domain box");
  }
  const auto len = params.domain.lengths();
  const double l_min = std::min({len[0], len[1], len[2]});

  MeshTuning t;
  t.order = params.mesh_order;
  // Split tolerance: a twentieth of the nominal treecode target, so the
  // Ewald truncation never dominates the error budget the user already
  // conceded to (theta, degree); floored where fp64 stops cooperating.
  t.target_error = std::clamp(
      0.05 * nominal_error_bound(params.theta, params.degree), 1e-11, 1e-5);
  const double c = inverse_erfc(t.target_error);
  const double spread = std::sqrt(std::log(1.0 / t.target_error));
  // Provisional splitting width from a 0.35 l_min cutoff; refined below
  // once the actual (pow2-rounded) grid is known.
  double alpha =
      params.ewald_alpha > 0.0 ? params.ewald_alpha : c / (0.35 * l_min);
  // Reciprocal truncation at the grid Nyquist pi/h: require
  // exp(-(pi/h)^2 / 4 alpha^2) <= eps, i.e. h <= pi / (2 alpha sqrt(ln 1/eps)).
  const double h = params.mesh_spacing > 0.0
                       ? params.mesh_spacing
                       : kPi / (2.0 * alpha * spread);
  t.nx = next_pow2_clamped(len[0] / h);
  t.ny = next_pow2_clamped(len[1] / h);
  t.nz = next_pow2_clamped(len[2] / h);
  // Harvest the pow2 round-up: the realized spacing supports a larger alpha
  // than the provisional one at the same reciprocal truncation, and a larger
  // alpha shrinks r_cut — near-field work scales with r_cut^3, the far field
  // pays nothing. Skipped when the user pinned alpha explicitly.
  if (params.ewald_alpha <= 0.0) {
    const double h_actual =
        std::max({len[0] / static_cast<double>(t.nx),
                  len[1] / static_cast<double>(t.ny),
                  len[2] / static_cast<double>(t.nz)});
    alpha = kPi / (2.0 * h_actual * spread);
  }
  t.alpha = alpha;
  // erfc(alpha r_cut) = eps, capped so one shift shell always covers it.
  t.r_cut = std::min(c / alpha, 0.45 * l_min);
  return t;
}

KernelSpec mesh_near_kernel(const TreecodeParams& params) {
  return KernelSpec::coulomb_erfc(tune_mesh(params).alpha);
}

MeshPlan::MeshPlan(const OrderedParticles& sources,
                   const TreecodeParams& params)
    : tuning_(tune_mesh(params)), domain_(params.domain) {
  WallTimer timer;
  nx_ = tuning_.nx;
  ny_ = tuning_.ny;
  nz_ = tuning_.nz;
  p_ = tuning_.order;
  const auto len = domain_.lengths();
  hx_ = len[0] / static_cast<double>(nx_);
  hy_ = len[1] / static_cast<double>(ny_);
  hz_ = len[2] / static_cast<double>(nz_);

  // Screened, spline-deconvolved Green's table over the half spectrum.
  const double vol = domain_.volume();
  const std::vector<double> dsqx = spline_dsq(nx_, p_);
  const std::vector<double> dsqy = spline_dsq(ny_, p_);
  const std::vector<double> dsqz = spline_dsq(nz_, p_);
  const std::size_t nzh = nz_ / 2 + 1;
  green_.assign(nx_ * ny_ * nzh, 0.0);
  const double alpha = tuning_.alpha;
  // The reciprocal sum phi(r) = sum_k G(k) S(k) e^{ikr} is a plain sum over
  // modes, but Fft3::inverse carries the 1/N convolution normalization, so
  // the Green table absorbs the compensating factor N.
  const double scale =
      (4.0 * kPi / vol) * static_cast<double>(nx_ * ny_ * nz_);
  for (std::size_t mx = 0; mx < nx_; ++mx) {
    // Fold in signed arithmetic: size_t mx - nx_ would wrap, not negate.
    const double fx = static_cast<double>(
        mx <= nx_ / 2 ? static_cast<long>(mx)
                      : static_cast<long>(mx) - static_cast<long>(nx_));
    const double kx = 2.0 * kPi * fx / len[0];
    for (std::size_t my = 0; my < ny_; ++my) {
      const double fy = static_cast<double>(
          my <= ny_ / 2 ? static_cast<long>(my)
                        : static_cast<long>(my) - static_cast<long>(ny_));
      const double ky = 2.0 * kPi * fy / len[1];
      for (std::size_t mz = 0; mz < nzh; ++mz) {
        const double kz = 2.0 * kPi * static_cast<double>(mz) / len[2];
        const double k2 = kx * kx + ky * ky + kz * kz;
        if (k2 == 0.0) continue;  // tinfoil boundary: k = 0 dropped
        green_[(mx * ny_ + my) * nzh + mz] =
            scale * std::exp(-k2 / (4.0 * alpha * alpha)) / k2 /
            (dsqx[mx] * dsqy[my] * dsqz[mz]);
      }
    }
  }
  self_factor_ = 2.0 * alpha / std::sqrt(kPi);

  fft_ = Fft3(nx_, ny_, nz_);
  rho_.assign(nx_ * ny_ * nz_, 0.0);
  phi_grid_.assign(nx_ * ny_ * nz_, 0.0);
  spec_.assign(2 * fft_.spectrum_bins(), 0.0);

  const std::size_t n = sources.size();
  base_.resize(3 * n);
  weights_.resize(static_cast<std::size_t>(3 * p_) * n);
  charge_.resize(n);
  keys_.resize(n);
  for (std::size_t i = 0; i < n; ++i) cache_slot(i, sources);
  rebuild_buckets();
  accumulate_all();
  pending_spread_seconds_ += timer.seconds();
}

void MeshPlan::cache_slot(std::size_t slot, const OrderedParticles& sources) {
  const double x = sources.x[slot];
  const double y = sources.y[slot];
  const double z = sources.z[slot];
  keys_[slot] = coord_key(x, y, z);
  charge_[slot] = sources.q[slot];

  const double ux = (x - domain_.lo[0]) / hx_;
  const double uy = (y - domain_.lo[1]) / hy_;
  const double uz = (z - domain_.lo[2]) / hz_;
  const double flx = std::floor(ux), fly = std::floor(uy),
               flz = std::floor(uz);
  const auto wrap_base = [](double fl, int p, std::size_t k) {
    const long b = static_cast<long>(fl) - p + 1;
    const long kk = static_cast<long>(k);
    return static_cast<int>(((b % kk) + kk) % kk);
  };
  base_[3 * slot] = wrap_base(flx, p_, nx_);
  base_[3 * slot + 1] = wrap_base(fly, p_, ny_);
  base_[3 * slot + 2] = wrap_base(flz, p_, nz_);
  double* w = &weights_[static_cast<std::size_t>(3 * p_) * slot];
  spline_weights(ux - flx, p_, w, nullptr);
  spline_weights(uy - fly, p_, w + p_, nullptr);
  spline_weights(uz - flz, p_, w + 2 * p_, nullptr);
}

void MeshPlan::rebuild_buckets() {
  plane_slots_.assign(nx_, {});
  for (std::size_t i = 0; i < charge_.size(); ++i) {
    plane_slots_[static_cast<std::size_t>(base_[3 * i])].push_back(
        static_cast<std::uint32_t>(i));
  }
}

void MeshPlan::accumulate_all() {
  std::fill(rho_.begin(), rho_.end(), 0.0);
  const int nx = static_cast<int>(nx_), ny = static_cast<int>(ny_),
            nz = static_cast<int>(nz_);
  // Slab-owned deterministic spread: each x-plane is accumulated by exactly
  // one thread, in canonical (plane offset, slot) order, so the result is
  // independent of the thread count and identical across rebuilds over the
  // same cached weights.
#pragma omp parallel for schedule(static)
  for (int ix = 0; ix < nx; ++ix) {
    double* plane = &rho_[static_cast<std::size_t>(ix) * ny_ * nz_];
    for (int dx = 0; dx < p_; ++dx) {
      const int b = ix - dx < 0 ? ix - dx + nx : ix - dx;
      for (const std::uint32_t slot : plane_slots_[b]) {
        const double* w = &weights_[static_cast<std::size_t>(3 * p_) * slot];
        const double qx = charge_[slot] * w[dx];
        const int by = base_[3 * slot + 1], bz = base_[3 * slot + 2];
        for (int ty = 0; ty < p_; ++ty) {
          const int iy = by + ty >= ny ? by + ty - ny : by + ty;
          const double qxy = qx * w[p_ + ty];
          double* row = plane + static_cast<std::size_t>(iy) * nz_;
          for (int tz = 0; tz < p_; ++tz) {
            const int iz = bz + tz >= nz ? bz + tz - nz : bz + tz;
            row[iz] += qxy * w[2 * p_ + tz];
          }
        }
      }
    }
  }
}

void MeshPlan::apply_slot_deltas(std::span<const std::uint32_t> slots,
                                 double sign, bool /*use_cache*/) {
  const int nx = static_cast<int>(nx_), ny = static_cast<int>(ny_),
            nz = static_cast<int>(nz_);
  // Bucket the touched slots by their (current cached) base plane so each
  // owning thread scans only O(touched) work, in canonical order.
  std::vector<std::vector<std::uint32_t>> touched(nx_);
  for (const std::uint32_t slot : slots) {
    touched[static_cast<std::size_t>(base_[3 * slot])].push_back(slot);
  }
  for (auto& bucket : touched) std::sort(bucket.begin(), bucket.end());
#pragma omp parallel for schedule(static)
  for (int ix = 0; ix < nx; ++ix) {
    double* plane = &rho_[static_cast<std::size_t>(ix) * ny_ * nz_];
    for (int dx = 0; dx < p_; ++dx) {
      const int b = ix - dx < 0 ? ix - dx + nx : ix - dx;
      for (const std::uint32_t slot : touched[b]) {
        const double* w = &weights_[static_cast<std::size_t>(3 * p_) * slot];
        const double qx = sign * charge_[slot] * w[dx];
        const int by = base_[3 * slot + 1], bz = base_[3 * slot + 2];
        for (int ty = 0; ty < p_; ++ty) {
          const int iy = by + ty >= ny ? by + ty - ny : by + ty;
          const double qxy = qx * w[p_ + ty];
          double* row = plane + static_cast<std::size_t>(iy) * nz_;
          for (int tz = 0; tz < p_; ++tz) {
            const int iz = bz + tz >= nz ? bz + tz - nz : bz + tz;
            row[iz] += qxy * w[2 * p_ + tz];
          }
        }
      }
    }
  }
}

void MeshPlan::update_charges(const OrderedParticles& sources) {
  WallTimer timer;
  for (std::size_t i = 0; i < charge_.size(); ++i) {
    charge_[i] = sources.q[i];
  }
  // Geometry weights are untouched; a canonical-order re-accumulation is
  // bit-identical to a fresh spread over the same positions.
  accumulate_all();
  dirty_ = true;
  ++version_;
  pending_spread_seconds_ += timer.seconds();
}

void MeshPlan::update_positions(
    const OrderedParticles& sources,
    std::span<const std::pair<std::size_t, std::size_t>> moved_ranges) {
  WallTimer timer;
  std::vector<std::uint32_t> slots;
  for (const auto& [begin, end] : moved_ranges) {
    for (std::size_t i = begin; i < end; ++i) {
      slots.push_back(static_cast<std::uint32_t>(i));
    }
  }
  if (slots.empty()) {
    pending_spread_seconds_ += timer.seconds();
    return;
  }
  // Repeated subtract/add deltas accumulate rounding drift in the grid;
  // periodically (and whenever most slots moved anyway) fall back to the
  // canonical full re-accumulation, which resets the grid to the
  // bit-identical fresh-spread state.
  const bool full = 4 * slots.size() > charge_.size() ||
                    ++updates_since_rebuild_ >= 64;
  if (!full) apply_slot_deltas(slots, -1.0, true);
  bool planes_changed = false;
  for (const std::uint32_t slot : slots) {
    const int old_plane = base_[3 * slot];
    cache_slot(slot, sources);
    if (base_[3 * slot] != old_plane) {
      planes_changed = true;
      if (!full) {
        auto& from = plane_slots_[static_cast<std::size_t>(old_plane)];
        from.erase(std::lower_bound(from.begin(), from.end(), slot));
        auto& to = plane_slots_[static_cast<std::size_t>(base_[3 * slot])];
        to.insert(std::lower_bound(to.begin(), to.end(), slot), slot);
      }
    }
  }
  if (full) {
    if (planes_changed) rebuild_buckets();
    accumulate_all();
    updates_since_rebuild_ = 0;
  } else {
    apply_slot_deltas(slots, 1.0, true);
  }
  dirty_ = true;
  ++version_;
  pending_spread_seconds_ += timer.seconds();
}

void MeshPlan::solve() {
  if (!dirty_) return;
  WallTimer timer;
  fft_.forward(rho_.data(), spec_.data());
  const std::size_t bins = fft_.spectrum_bins();
#pragma omp parallel for schedule(static)
  for (long long b = 0; b < static_cast<long long>(bins); ++b) {
    spec_[2 * b] *= green_[static_cast<std::size_t>(b)];
    spec_[2 * b + 1] *= green_[static_cast<std::size_t>(b)];
  }
  fft_.inverse(spec_.data(), phi_grid_.data());

  q_total_ = 0.0;
  for (const double q : charge_) q_total_ += q;
  background_ =
      -kPi * q_total_ / (tuning_.alpha * tuning_.alpha * domain_.volume());

  // Coincident-source index: summed charge per exact coordinate bit
  // pattern, so interpolation can subtract the Ewald self term under the
  // same skip-coincident-pairs convention the singular near field uses.
  coincident_.clear();
  coincident_.reserve(charge_.size());
  for (std::size_t i = 0; i < charge_.size(); ++i) {
    coincident_.push_back({keys_[i], charge_[i]});
  }
  std::sort(coincident_.begin(), coincident_.end(),
            [](const Coincident& a, const Coincident& b) {
              return a.key < b.key;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < coincident_.size();) {
    Coincident merged = coincident_[i];
    for (++i; i < coincident_.size() && coincident_[i].key == merged.key;
         ++i) {
      merged.q += coincident_[i].q;
    }
    coincident_[out++] = merged;
  }
  coincident_.resize(out);

  dirty_ = false;
  pending_fft_seconds_ += timer.seconds();
}

double MeshPlan::coincident_charge(double x, double y, double z) const {
  const auto key = coord_key(x, y, z);
  const auto it = std::lower_bound(
      coincident_.begin(), coincident_.end(), key,
      [](const Coincident& a, const std::array<std::uint64_t, 3>& k) {
        return a.key < k;
      });
  if (it != coincident_.end() && it->key == key) return it->q;
  return 0.0;
}

void MeshPlan::add_potential(const OrderedParticles& targets,
                             std::span<double> phi) const {
  if (dirty_) {
    throw std::logic_error("MeshPlan::add_potential: call solve() first");
  }
  const long long n = static_cast<long long>(targets.size());
  const int nx = static_cast<int>(nx_), ny = static_cast<int>(ny_),
            nz = static_cast<int>(nz_);
#pragma omp parallel for schedule(static)
  for (long long i = 0; i < n; ++i) {
    const double x = targets.x[i], y = targets.y[i], z = targets.z[i];
    const double ux = (x - domain_.lo[0]) / hx_;
    const double uy = (y - domain_.lo[1]) / hy_;
    const double uz = (z - domain_.lo[2]) / hz_;
    const double flx = std::floor(ux), fly = std::floor(uy),
                 flz = std::floor(uz);
    double wx[kMaxOrder], wy[kMaxOrder], wz[kMaxOrder];
    spline_weights(ux - flx, p_, wx, nullptr);
    spline_weights(uy - fly, p_, wy, nullptr);
    spline_weights(uz - flz, p_, wz, nullptr);
    const auto wrap_base = [](double fl, int p, int k) {
      const long b = static_cast<long>(fl) - p + 1;
      return static_cast<int>(((b % k) + k) % k);
    };
    const int bx = wrap_base(flx, p_, nx);
    const int by = wrap_base(fly, p_, ny);
    const int bz = wrap_base(flz, p_, nz);
    double acc = 0.0;
    for (int tx = 0; tx < p_; ++tx) {
      const int ix = bx + tx >= nx ? bx + tx - nx : bx + tx;
      const double* plane = &phi_grid_[static_cast<std::size_t>(ix) * ny_ *
                                       nz_];
      double acc_x = 0.0;
      for (int ty = 0; ty < p_; ++ty) {
        const int iy = by + ty >= ny ? by + ty - ny : by + ty;
        const double* row = plane + static_cast<std::size_t>(iy) * nz_;
        double acc_y = 0.0;
        for (int tz = 0; tz < p_; ++tz) {
          const int iz = bz + tz >= nz ? bz + tz - nz : bz + tz;
          acc_y += wz[tz] * row[iz];
        }
        acc_x += wy[ty] * acc_y;
      }
      acc += wx[tx] * acc_x;
    }
    phi[i] += acc + background_ - self_factor_ * coincident_charge(x, y, z);
  }
}

void MeshPlan::add_field(const OrderedParticles& targets,
                         FieldResult& out) const {
  if (dirty_) {
    throw std::logic_error("MeshPlan::add_field: call solve() first");
  }
  const long long n = static_cast<long long>(targets.size());
  const int nx = static_cast<int>(nx_), ny = static_cast<int>(ny_),
            nz = static_cast<int>(nz_);
#pragma omp parallel for schedule(static)
  for (long long i = 0; i < n; ++i) {
    const double x = targets.x[i], y = targets.y[i], z = targets.z[i];
    const double ux = (x - domain_.lo[0]) / hx_;
    const double uy = (y - domain_.lo[1]) / hy_;
    const double uz = (z - domain_.lo[2]) / hz_;
    const double flx = std::floor(ux), fly = std::floor(uy),
                 flz = std::floor(uz);
    double wx[kMaxOrder], wy[kMaxOrder], wz[kMaxOrder];
    double dx[kMaxOrder], dy[kMaxOrder], dz[kMaxOrder];
    spline_weights(ux - flx, p_, wx, dx);
    spline_weights(uy - fly, p_, wy, dy);
    spline_weights(uz - flz, p_, wz, dz);
    const auto wrap_base = [](double fl, int p, int k) {
      const long b = static_cast<long>(fl) - p + 1;
      return static_cast<int>(((b % k) + k) % k);
    };
    const int bx = wrap_base(flx, p_, nx);
    const int by = wrap_base(fly, p_, ny);
    const int bz = wrap_base(flz, p_, nz);
    double phi = 0.0, gx = 0.0, gy = 0.0, gz = 0.0;
    for (int tx = 0; tx < p_; ++tx) {
      const int ix = bx + tx >= nx ? bx + tx - nx : bx + tx;
      const double* plane = &phi_grid_[static_cast<std::size_t>(ix) * ny_ *
                                       nz_];
      double acc_w = 0.0, acc_d = 0.0;
      for (int ty = 0; ty < p_; ++ty) {
        const int iy = by + ty >= ny ? by + ty - ny : by + ty;
        const double* row = plane + static_cast<std::size_t>(iy) * nz_;
        double acc_wz = 0.0, acc_dz = 0.0;
        for (int tz = 0; tz < p_; ++tz) {
          const int iz = bz + tz >= nz ? bz + tz - nz : bz + tz;
          acc_wz += wz[tz] * row[iz];
          acc_dz += dz[tz] * row[iz];
        }
        acc_w += wy[ty] * acc_wz;
        acc_d += dy[ty] * acc_wz;
        // z-derivative shares the (wx, wy) weights; accumulate below.
        gz -= wx[tx] * wy[ty] * acc_dz / hz_;
      }
      phi += wx[tx] * acc_w;
      gx -= dx[tx] * acc_w / hx_;
      gy -= wx[tx] * acc_d / hy_;
    }
    // Self and background terms are position-independent: potential only.
    out.phi[i] += phi + background_ -
                  self_factor_ * coincident_charge(x, y, z);
    out.ex[i] += gx;
    out.ey[i] += gy;
    out.ez[i] += gz;
  }
}

std::size_t MeshPlan::bytes() const {
  std::size_t total = (rho_.capacity() + phi_grid_.capacity() +
                       green_.capacity() + spec_.capacity() +
                       weights_.capacity() + charge_.capacity()) *
                          sizeof(double) +
                      base_.capacity() * sizeof(int) +
                      keys_.capacity() * sizeof(keys_[0]) +
                      coincident_.capacity() * sizeof(Coincident);
  for (const auto& bucket : plane_slots_) {
    total += bucket.capacity() * sizeof(std::uint32_t);
  }
  return total;
}

void MeshPlan::take_pending_seconds(double* spread_seconds,
                                    double* fft_seconds) {
  if (spread_seconds != nullptr) *spread_seconds += pending_spread_seconds_;
  if (fft_seconds != nullptr) *fft_seconds += pending_fft_seconds_;
  pending_spread_seconds_ = 0.0;
  pending_fft_seconds_ = 0.0;
}

}  // namespace bltc::mesh
