#include "mesh/fft.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace bltc::mesh {
namespace {

constexpr double kPi = 3.141592653589793238462643383279502884;

}  // namespace

Fft1d::Fft1d(std::size_t n) : n_(n) {
  if (!is_pow2(n)) {
    throw std::invalid_argument("Fft1d: length must be a power of two");
  }
  twiddle_.reserve(2 * (n - 1));
  for (std::size_t n0 = n; n0 > 1; n0 >>= 1) {
    const std::size_t m = n0 >> 1;
    const double theta = 2.0 * kPi / static_cast<double>(n0);
    for (std::size_t p = 0; p < m; ++p) {
      const double a = theta * static_cast<double>(p);
      twiddle_.push_back(std::cos(a));
      twiddle_.push_back(-std::sin(a));  // forward sign
    }
  }
}

void Fft1d::run(double* x, double* work, double sign) const {
  if (n_ <= 1) return;
  const double* tw = twiddle_.data();
  double* src = x;
  double* dst = work;
  // Stockham DIF: stage over sub-transform length n0, stride s. Each stage
  // is a full sweep src -> dst; the autosort keeps outputs in natural order
  // so no bit-reversal pass is needed.
  for (std::size_t n0 = n_, s = 1; n0 > 1; n0 >>= 1, s <<= 1) {
    const std::size_t m = n0 >> 1;
    for (std::size_t p = 0; p < m; ++p) {
      const double wr = tw[0];
      const double wi = sign < 0.0 ? tw[1] : -tw[1];
      tw += 2;
      const double* a = src + 2 * s * p;
      const double* b = src + 2 * s * (p + m);
      double* lo = dst + 2 * s * (2 * p);
      double* hi = dst + 2 * s * (2 * p + 1);
      for (std::size_t q = 0; q < s; ++q) {
        const double ar = a[2 * q], ai = a[2 * q + 1];
        const double br = b[2 * q], bi = b[2 * q + 1];
        lo[2 * q] = ar + br;
        lo[2 * q + 1] = ai + bi;
        const double dr = ar - br, di = ai - bi;
        hi[2 * q] = dr * wr - di * wi;
        hi[2 * q + 1] = dr * wi + di * wr;
      }
    }
    std::swap(src, dst);
  }
  if (src != x) std::memcpy(x, src, 2 * n_ * sizeof(double));
}

Fft3::Fft3(std::size_t nx, std::size_t ny, std::size_t nz)
    : nx_(nx), ny_(ny), nz_(nz), nzh_(nz / 2 + 1) {
  if (!is_pow2(nx) || !is_pow2(ny) || !is_pow2(nz) || nx < 8 || ny < 8 ||
      nz < 8) {
    throw std::invalid_argument(
        "Fft3: grid dimensions must be powers of two, each >= 8");
  }
  fx_ = Fft1d(nx);
  fy_ = Fft1d(ny);
  fz_ = Fft1d(nz / 2);
  untangle_.resize(2 * (nz / 2 + 1));
  for (std::size_t k = 0; k <= nz / 2; ++k) {
    const double a = 2.0 * kPi * static_cast<double>(k) /
                     static_cast<double>(nz);
    untangle_[2 * k] = std::cos(a);
    untangle_[2 * k + 1] = -std::sin(a);
  }
}

void Fft3::forward(const double* real, double* spec) const {
  const std::size_t h = nz_ / 2;
  const std::size_t pencils = nx_ * ny_;
  const std::size_t buf_len = 2 * std::max({nx_, ny_, h});
#pragma omp parallel
  {
    std::vector<double> buf(buf_len), wk(buf_len);
    // z stage: pack the nz contiguous reals of each pencil as nz/2 complex
    // points, transform, and untangle into the nzh half-spectrum bins.
#pragma omp for schedule(static)
    for (std::size_t pencil = 0; pencil < pencils; ++pencil) {
      std::memcpy(buf.data(), real + pencil * nz_, nz_ * sizeof(double));
      fz_.forward(buf.data(), wk.data());
      double* out = spec + pencil * nzh_ * 2;
      out[0] = buf[0] + buf[1];
      out[1] = 0.0;
      out[2 * h] = buf[0] - buf[1];
      out[2 * h + 1] = 0.0;
      for (std::size_t k = 1; k < h; ++k) {
        const double zr = buf[2 * k], zi = buf[2 * k + 1];
        const double yr = buf[2 * (h - k)], yi = buf[2 * (h - k) + 1];
        // Even/odd sub-spectra: E = (Z[k] + conj(Z[h-k]))/2,
        // O = (Z[k] - conj(Z[h-k]))/(2i); F[k] = E + W^k O, W = e^{-2pi i/nz}.
        const double er = 0.5 * (zr + yr), ei = 0.5 * (zi - yi);
        const double odd_r = 0.5 * (zi + yi), odd_i = -0.5 * (zr - yr);
        const double c = untangle_[2 * k], s = untangle_[2 * k + 1];
        out[2 * k] = er + odd_r * c - odd_i * s;
        out[2 * k + 1] = ei + odd_r * s + odd_i * c;
      }
    }
    // y stage: gathered complex pencils of length ny, stride nzh bins.
#pragma omp for schedule(static) collapse(2)
    for (std::size_t ix = 0; ix < nx_; ++ix) {
      for (std::size_t kz = 0; kz < nzh_; ++kz) {
        double* base = spec + (ix * ny_ * nzh_ + kz) * 2;
        for (std::size_t iy = 0; iy < ny_; ++iy) {
          buf[2 * iy] = base[iy * nzh_ * 2];
          buf[2 * iy + 1] = base[iy * nzh_ * 2 + 1];
        }
        fy_.forward(buf.data(), wk.data());
        for (std::size_t iy = 0; iy < ny_; ++iy) {
          base[iy * nzh_ * 2] = buf[2 * iy];
          base[iy * nzh_ * 2 + 1] = buf[2 * iy + 1];
        }
      }
    }
    // x stage: gathered complex pencils of length nx, stride ny*nzh bins.
#pragma omp for schedule(static) collapse(2)
    for (std::size_t iy = 0; iy < ny_; ++iy) {
      for (std::size_t kz = 0; kz < nzh_; ++kz) {
        double* base = spec + (iy * nzh_ + kz) * 2;
        const std::size_t stride = ny_ * nzh_ * 2;
        for (std::size_t ix = 0; ix < nx_; ++ix) {
          buf[2 * ix] = base[ix * stride];
          buf[2 * ix + 1] = base[ix * stride + 1];
        }
        fx_.forward(buf.data(), wk.data());
        for (std::size_t ix = 0; ix < nx_; ++ix) {
          base[ix * stride] = buf[2 * ix];
          base[ix * stride + 1] = buf[2 * ix + 1];
        }
      }
    }
  }
}

void Fft3::inverse(double* spec, double* real) const {
  const std::size_t h = nz_ / 2;
  const std::size_t pencils = nx_ * ny_;
  const std::size_t buf_len = 2 * std::max({nx_, ny_, h});
  // The three inverse 1D sweeps are unnormalized; the z pack derivation
  // carries its own 1/2 factors, leaving exactly nx*ny*(nz/2) to divide out.
  const double scale =
      1.0 / (static_cast<double>(nx_) * static_cast<double>(ny_) *
             static_cast<double>(h));
#pragma omp parallel
  {
    std::vector<double> buf(buf_len), wk(buf_len);
#pragma omp for schedule(static) collapse(2)
    for (std::size_t iy = 0; iy < ny_; ++iy) {
      for (std::size_t kz = 0; kz < nzh_; ++kz) {
        double* base = spec + (iy * nzh_ + kz) * 2;
        const std::size_t stride = ny_ * nzh_ * 2;
        for (std::size_t ix = 0; ix < nx_; ++ix) {
          buf[2 * ix] = base[ix * stride];
          buf[2 * ix + 1] = base[ix * stride + 1];
        }
        fx_.inverse(buf.data(), wk.data());
        for (std::size_t ix = 0; ix < nx_; ++ix) {
          base[ix * stride] = buf[2 * ix];
          base[ix * stride + 1] = buf[2 * ix + 1];
        }
      }
    }
#pragma omp for schedule(static) collapse(2)
    for (std::size_t ix = 0; ix < nx_; ++ix) {
      for (std::size_t kz = 0; kz < nzh_; ++kz) {
        double* base = spec + (ix * ny_ * nzh_ + kz) * 2;
        for (std::size_t iy = 0; iy < ny_; ++iy) {
          buf[2 * iy] = base[iy * nzh_ * 2];
          buf[2 * iy + 1] = base[iy * nzh_ * 2 + 1];
        }
        fy_.inverse(buf.data(), wk.data());
        for (std::size_t iy = 0; iy < ny_; ++iy) {
          base[iy * nzh_ * 2] = buf[2 * iy];
          base[iy * nzh_ * 2 + 1] = buf[2 * iy + 1];
        }
      }
    }
    // z stage: retangle the half spectrum back into nz/2 packed complex
    // points, inverse transform, and unpack reals.
#pragma omp for schedule(static)
    for (std::size_t pencil = 0; pencil < pencils; ++pencil) {
      const double* in = spec + pencil * nzh_ * 2;
      // Z[0] re/im are the (real) DC and Nyquist bins re-fused.
      buf[0] = 0.5 * (in[0] + in[2 * h]);
      buf[1] = 0.5 * (in[0] - in[2 * h]);
      for (std::size_t k = 1; k < h; ++k) {
        const double fr = in[2 * k], fi = in[2 * k + 1];
        const double gr = in[2 * (h - k)], gi = in[2 * (h - k) + 1];
        const double er = 0.5 * (fr + gr), ei = 0.5 * (fi - gi);
        const double dr = 0.5 * (fr - gr), di = 0.5 * (fi + gi);
        // O = conj(W^k) * (F[k] - conj(F[h-k]))/2; Z = E + i O.
        const double c = untangle_[2 * k], s = untangle_[2 * k + 1];
        const double odd_r = dr * c + di * s;
        const double odd_i = di * c - dr * s;
        buf[2 * k] = er - odd_i;
        buf[2 * k + 1] = ei + odd_r;
      }
      fz_.inverse(buf.data(), wk.data());
      double* out = real + pencil * nz_;
      for (std::size_t j = 0; j < nz_; ++j) out[j] = scale * buf[j];
    }
  }
}

}  // namespace bltc::mesh
