// PME bench: what does periodic Coulomb cost through the mesh far field vs
// through truncated image shells? Four runs over the same neutral ionic
// cell at the same (theta, n):
//
//   * open       — the same cloud with open boundaries: the near-field
//                  eval-count baseline (what the treecode costs with no
//                  periodicity at all);
//   * mesh       — kPeriodicMesh: screened erfc(ar)/r near field with a
//                  range cutoff + FFT mesh far field. The headline claim:
//                  near-field kernel evals stay within ~1.3x of the open
//                  baseline, and the error matches the *converged* Ewald
//                  sum at the treecode's nominal error target;
//   * shells=1/2 — legacy kPeriodic image-shell truncation: 27/125 lattice
//                  images through the treecode, 4.4-6.6x the open eval
//                  count, and an error floor set by lattice truncation (the
//                  conditionally-convergent Coulomb sum converges slowly in
//                  shells), not by (theta, n).
//
// Errors are measured against the converged classical Ewald oracle
// (direct_sum_ewald_sampled) for the periodic runs. Results are written to
// BENCH_pme.json (override with --json) for cross-PR tracking.
//
// BLTC_PME_N rescales the run (default ~40k: 34^3 lattice sites).
#include <cmath>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/direct_sum.hpp"
#include "core/periodic.hpp"
#include "core/solver.hpp"
#include "mesh/mesh.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace bltc;

namespace {

TreecodeParams base_params() {
  TreecodeParams p;
  p.theta = 0.7;
  p.degree = 8;
  p.max_leaf = 500;
  p.max_batch = 500;
  return p;
}

struct RunResult {
  double evals = 0.0;      ///< near-field (treecode) kernel evaluations
  double error = 0.0;      ///< sampled rel-2-norm vs the matching oracle
  double compute = 0.0;    ///< treecode compute seconds
  double mesh_cost = 0.0;  ///< spread+gather + k-space seconds (mesh only)
  std::size_t mesh_points = 0;
};

RunResult run_case(const Cloud& cloud, const TreecodeParams& params,
                   std::span<const std::size_t> sample,
                   const std::vector<double>& oracle) {
  SolverConfig config;
  config.kernel = KernelSpec::coulomb();
  config.params = params;
  Solver solver(config);
  solver.set_sources(cloud);
  RunStats stats;
  const std::vector<double> phi = solver.evaluate(cloud, &stats);

  RunResult r;
  r.evals = stats.approx_evals + stats.direct_evals;
  r.compute = stats.compute_seconds;
  r.mesh_cost = stats.mesh_spread_seconds + stats.fft_seconds;
  r.mesh_points = stats.mesh_points;
  std::vector<double> approx(sample.size());
  for (std::size_t s = 0; s < sample.size(); ++s) approx[s] = phi[sample[s]];
  r.error = relative_l2_error(oracle, approx);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "PME periodic Coulomb — mesh far field vs truncated image shells",
      "BLTC_PME_N (default 39304 = 34^3 lattice sites)");

  const std::size_t n = env_size("BLTC_PME_N", 39304);
  auto cells = static_cast<std::size_t>(std::cbrt(static_cast<double>(n)));
  if (cells < 2) cells = 2;
  const double box = 1.0;
  const Cloud cloud = ionic_lattice(cells, 4242, box, 0.5);

  TreecodeParams params = base_params();
  params.domain = Box3::cube(0.0, box);

  const auto sample = sample_indices(cloud.size(), 300);
  // One converged Ewald reference serves every periodic run; the open run
  // is scored against the plain direct sum over the same sample.
  WallTimer oracle_timer;
  const std::vector<double> ewald =
      direct_sum_ewald_sampled(cloud, sample, cloud, params.domain);
  const std::vector<double> open_ref =
      direct_sum_sampled(cloud, sample, cloud, KernelSpec::coulomb());
  std::printf("oracle: converged Ewald + open direct sum over %zu samples "
              "(%.1f s)\n\n",
              sample.size(), oracle_timer.seconds());

  TreecodeParams open_params = params;  // kOpen, same theta/n/leaf/batch
  TreecodeParams mesh_params = params;
  mesh_params.boundary = BoundaryConditions::kPeriodicMesh;
  TreecodeParams shell1 = params;
  shell1.boundary = BoundaryConditions::kPeriodic;
  shell1.image_shells = 1;
  TreecodeParams shell2 = shell1;
  shell2.image_shells = 2;

  const RunResult open_run = run_case(cloud, open_params, sample, open_ref);
  const RunResult mesh_run = run_case(cloud, mesh_params, sample, ewald);
  const RunResult s1_run = run_case(cloud, shell1, sample, ewald);
  const RunResult s2_run = run_case(cloud, shell2, sample, ewald);

  const mesh::MeshTuning tuning = mesh::tune_mesh(mesh_params);
  bench::Table table({"mode", "near evals", "vs open", "error", "compute[s]",
                      "far cost[s]"});
  const auto row = [&](const char* label, const RunResult& r) {
    table.add_row({label, bench::Table::sci(r.evals),
                   bench::Table::num(r.evals / open_run.evals, 2),
                   bench::Table::sci(r.error), bench::Table::num(r.compute, 3),
                   bench::Table::num(r.mesh_cost, 3)});
  };
  row("open (baseline)", open_run);
  row("mesh (kPeriodicMesh)", mesh_run);
  row("shells=1 (27 images)", s1_run);
  row("shells=2 (125 images)", s2_run);
  table.print();
  std::printf("\nmesh tuning: order %d, alpha %.2f, r_cut %.3f, grid "
              "%dx%dx%d (%zu points), target error %.1e\n",
              tuning.order, tuning.alpha, tuning.r_cut, tuning.nx, tuning.ny,
              tuning.nz, mesh_run.mesh_points, tuning.target_error);
  std::printf("near-field eval ratio vs open: mesh %.2fx, shells=1 %.2fx, "
              "shells=2 %.2fx\n",
              mesh_run.evals / open_run.evals, s1_run.evals / open_run.evals,
              s2_run.evals / open_run.evals);

  bench::JsonReport report("bench_pme");
  report.note("n", std::to_string(cloud.size()));
  report.note("theta", bench::Table::num(params.theta, 2));
  report.note("degree", std::to_string(params.degree));
  report.note("mesh_grid", std::to_string(tuning.nx) + "x" +
                               std::to_string(tuning.ny) + "x" +
                               std::to_string(tuning.nz));
  report.metric("open_evals", open_run.evals);
  report.metric("mesh_near_evals", mesh_run.evals);
  report.metric("shells1_evals", s1_run.evals);
  report.metric("shells2_evals", s2_run.evals);
  report.metric("mesh_eval_ratio", mesh_run.evals / open_run.evals);
  report.metric("shells1_eval_ratio", s1_run.evals / open_run.evals);
  report.metric("shells2_eval_ratio", s2_run.evals / open_run.evals);
  report.metric("mesh_error_vs_ewald", mesh_run.error);
  report.metric("shells1_error_vs_ewald", s1_run.error);
  report.metric("shells2_error_vs_ewald", s2_run.error);
  report.metric("open_error", open_run.error);
  report.metric("mesh_points", static_cast<double>(mesh_run.mesh_points));
  report.metric("mesh_far_seconds", mesh_run.mesh_cost);
  report.metric("mesh_compute_seconds", mesh_run.compute);
  report.metric("shells1_compute_seconds", s1_run.compute);
  report.metric("nominal_error_target", tuning.target_error);
  report.write(bench::json_output_path(argc, argv, "BENCH_pme.json"));

  std::printf("\nThe mesh far field replaces the (2k+1)^3-image lattice sum: "
              "near-field work stays\nat the open-boundary level while the "
              "error tracks the converged Ewald sum instead\nof an "
              "image-truncation floor.\n");
  return 0;
}
