// Micro suite over the hot building blocks of the BLTC: the blocked
// direct-sum and barycentric-approximation evaluators (the two kernels the
// paper's speedups come from), kernel evaluations, barycentric basis,
// per-cluster modified charges (both algebraic forms), tree construction,
// traversal, and RCB.
//
// The headline metrics are `direct_interactions_per_sec` and
// `approx_interactions_per_sec`: G(x,y) pair-evaluations per second through
// the engine's blocked kernel core (core/cpu_kernels.hpp), measured on an
// all-direct and an all-approx interaction pattern respectively. Results
// are printed as a table and written to BENCH_micro.json (override with
// `--json out.json`, disable with `--json -`) so the perf trajectory is
// tracked across PRs.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/barycentric.hpp"
#include "core/batches.hpp"
#include "core/chebyshev.hpp"
#include "core/cpu_kernels.hpp"
#include "core/direct_sum.hpp"
#include "core/interaction_lists.hpp"
#include "core/kernels.hpp"
#include "core/moments.hpp"
#include "core/tree.hpp"
#include "partition/rcb.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"
#include "util/workloads.hpp"

using namespace bltc;

namespace {

double g_sink = 0.0;  ///< defeats dead-code elimination across benchmarks

/// Average seconds per call of `fn`, with reps chosen for a stable reading.
double time_call(const std::function<void()>& fn, double min_seconds = 0.2) {
  fn();  // warm-up (and first-touch of any lazily sized buffers)
  WallTimer timer;
  fn();
  double elapsed = timer.seconds();
  std::size_t reps = 1;
  if (elapsed < min_seconds) {
    reps = static_cast<std::size_t>(min_seconds / (elapsed + 1e-9)) + 1;
    timer.reset();
    for (std::size_t r = 0; r < reps; ++r) fn();
    elapsed = timer.seconds();
  }
  return elapsed / static_cast<double>(reps);
}

/// Tree + batches + lists + moments for one (targets, sources) pair.
struct EvalSetup {
  OrderedParticles src, tgt;
  ClusterTree tree;
  ClusterMoments moments;
  std::vector<TargetBatch> batches;
  InteractionLists lists;

  EvalSetup(const Cloud& targets, const Cloud& sources, double theta,
            int degree) {
    src = OrderedParticles::from_cloud(sources);
    TreeParams tp;
    tp.max_leaf = 2000;
    tree = ClusterTree::build(src, tp);
    moments = ClusterMoments::compute(tree, src, degree);
    tgt = OrderedParticles::from_cloud(targets);
    batches = build_target_batches(tgt, 2000);
    lists = build_interaction_lists(batches, tree, theta, degree);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Micro benchmarks — blocked evaluators and treecode building blocks",
      "BLTC_MICRO_DIRECT_N (default 8000), BLTC_MICRO_APPROX_N (default "
      "20000)");

  const std::size_t direct_n = env_size("BLTC_MICRO_DIRECT_N", 8000);
  const std::size_t approx_n = env_size("BLTC_MICRO_APPROX_N", 20000);

  bench::Table table({"benchmark", "time", "rate"});
  bench::JsonReport report("bench_micro");
  report.note("direct_n", std::to_string(direct_n));
  report.note("approx_n", std::to_string(approx_n));
  report.note("rate_unit", "per second");

  const auto row = [&](const std::string& name, double seconds, double items,
                       const std::string& what) {
    table.add_row({name, bench::Table::sci(seconds) + " s",
                   bench::Table::sci(items / seconds) + " " + what + "/s"});
    report.metric(name + "_seconds", seconds);
    report.metric(name + "_per_sec", items / seconds);
  };

  // --- Blocked direct-sum rate (Eq. 9): theta ~ 0 makes every list entry a
  // direct cluster, so the evaluator streams real particles only.
  {
    const Cloud c = uniform_cube(direct_n, 7);
    EvalSetup s(c, c, 0.05, 8);
    EngineCounters counters;
    CpuWorkspace ws;
    const double sec = time_call([&] {
      g_sink += cpu_evaluate(s.tgt, s.batches, s.lists, s.tree, s.src,
                             s.moments, KernelSpec::coulomb(), nullptr,
                             &counters, &ws)[0];
    });
    row("direct_interactions", sec, counters.direct_evals, "inter");
  }

  // --- Blocked approx rate (Eq. 11): far-away targets, every cluster
  // passes the MAC, the evaluator streams Chebyshev points only.
  {
    const Cloud c = uniform_cube(approx_n, 7);
    Cloud far = c;
    for (auto& v : far.x) v += 6.0;
    for (auto& v : far.y) v += 6.0;
    for (auto& v : far.z) v += 6.0;
    EvalSetup s(far, c, 0.8, 8);
    EngineCounters counters;
    CpuWorkspace ws;
    const double sec = time_call([&] {
      g_sink += cpu_evaluate(s.tgt, s.batches, s.lists, s.tree, s.src,
                             s.moments, KernelSpec::coulomb(), nullptr,
                             &counters, &ws)[0];
    });
    row("approx_interactions", sec, counters.approx_evals, "inter");

    // Same pattern through the field evaluator (potential + E).
    EngineCounters fcounters;
    const double fsec = time_call([&] {
      g_sink += cpu_evaluate_field(s.tgt, s.batches, s.lists, s.tree, s.src,
                                   s.moments, KernelSpec::coulomb(), nullptr,
                                   &fcounters, &ws)
                    .ex[0];
    });
    row("approx_field_interactions", fsec, fcounters.approx_evals, "inter");
  }

  // --- Field direct rate.
  {
    const Cloud c = uniform_cube(direct_n, 7);
    EvalSetup s(c, c, 0.05, 8);
    EngineCounters counters;
    CpuWorkspace ws;
    const double sec = time_call([&] {
      g_sink += cpu_evaluate_field(s.tgt, s.batches, s.lists, s.tree, s.src,
                                   s.moments, KernelSpec::coulomb(), nullptr,
                                   &counters, &ws)
                    .ex[0];
    });
    row("direct_field_interactions", sec, counters.direct_evals, "inter");
  }

  // --- Kernel evaluations (scalar dispatch form, per 1000 calls).
  const std::vector<std::pair<std::string, KernelSpec>> kernel_cases{
      {"kernel_coulomb", KernelSpec::coulomb()},
      {"kernel_yukawa", KernelSpec::yukawa(0.5)}};
  for (const auto& [name, spec] : kernel_cases) {
    const KernelSpec local = spec;
    const double sec = time_call([&] {
      double r2 = 1.0;
      with_kernel(local, [&](auto k) {
        double acc = 0.0;
        for (int i = 0; i < 1000; ++i) {
          acc += k(r2);
          r2 += 1e-9;
        }
        g_sink += acc;
      });
    });
    row(name, sec, 1000.0, "eval");
  }

  // --- Barycentric basis at degree 8.
  {
    const auto pts = chebyshev2_points(8);
    const auto wts = chebyshev2_weights(8);
    std::vector<double> out(pts.size());
    double t = 0.1234;
    const double sec = time_call([&] {
      barycentric_basis(pts, wts, t, out);
      g_sink += out[0];
      t += 1e-9;
    });
    row("barycentric_basis_deg8", sec, 1.0, "call");
  }

  // --- Per-cluster modified charges, both algebraic forms (degree 8).
  {
    const Cloud c = uniform_cube(2000, 1);
    OrderedParticles sources = OrderedParticles::from_cloud(c);
    TreeParams tp;
    tp.max_leaf = 2000;
    const ClusterTree tree = ClusterTree::build(sources, tp);
    const ClusterMoments grids = ClusterMoments::grids_only(tree, 8);
    std::vector<double> out(grids.points_per_cluster());
    const double dsec = time_call([&] {
      ClusterMoments::compute_cluster_direct(tree, sources, 8, 0,
                                             grids.grid(0, 0),
                                             grids.grid(0, 1),
                                             grids.grid(0, 2), out);
      g_sink += out[0];
    });
    row("moments_direct_deg8", dsec, 2000.0, "particle");
    const double fsec = time_call([&] {
      ClusterMoments::compute_cluster_factorized(tree, sources, 8, 0,
                                                 grids.grid(0, 0),
                                                 grids.grid(0, 1),
                                                 grids.grid(0, 2), out);
      g_sink += out[0];
    });
    row("moments_factorized_deg8", fsec, 2000.0, "particle");
  }

  // --- Tree construction.
  {
    const Cloud c = uniform_cube(50000, 2);
    const double sec = time_call([&] {
      OrderedParticles p = OrderedParticles::from_cloud(c);
      TreeParams tp;
      tp.max_leaf = 500;
      const ClusterTree tree = ClusterTree::build(p, tp);
      g_sink += static_cast<double>(tree.num_nodes());
    });
    row("tree_build_50k", sec, 50000.0, "particle");
  }

  // --- Batched traversal (list construction, parallel over batches).
  {
    const Cloud c = uniform_cube(30000, 3);
    OrderedParticles src = OrderedParticles::from_cloud(c);
    TreeParams tp;
    tp.max_leaf = 500;
    const ClusterTree tree = ClusterTree::build(src, tp);
    OrderedParticles tgt = OrderedParticles::from_cloud(c);
    const auto batches = build_target_batches(tgt, 500);
    const double sec = time_call([&] {
      const InteractionLists lists =
          build_interaction_lists(batches, tree, 0.8, 8);
      g_sink += static_cast<double>(lists.total_approx);
    });
    row("traversal_30k", sec, 1.0, "call");

    // Dual (pairwise) traversal over the same trees, self mode included.
    const double dsec = time_call([&] {
      const DualInteractionLists lists =
          build_dual_interaction_lists(tree, tree, 0.8, 8, /*self=*/true);
      g_sink += static_cast<double>(lists.total_cc);
    });
    row("dual_traversal_30k", dsec, 1.0, "call");
  }

  // --- RCB partition.
  {
    const Cloud c = uniform_cube(50000, 4);
    const Box3 domain = Box3::cube(-1.0, 1.0);
    const double sec = time_call([&] {
      const RcbResult r = rcb_partition(c.x, c.y, c.z, 32, domain);
      g_sink += static_cast<double>(r.assignment[0]);
    });
    row("rcb_50k_32parts", sec, 50000.0, "particle");
  }

  // --- O(N^2) reference direct sum (the exact oracle, kept scalar).
  {
    const Cloud c = uniform_cube(4000, 5);
    const double sec = time_call([&] {
      g_sink += direct_sum(c, c, KernelSpec::coulomb())[0];
    });
    row("direct_sum_naive_4k", sec, 4000.0 * 4000.0, "inter");
  }

  table.print();
  std::printf("(sink %.3g)\n", g_sink);

  const std::string json_path =
      bench::json_output_path(argc, argv, "BENCH_micro.json");
  if (!json_path.empty()) report.write(json_path);
  return 0;
}
