// google-benchmark micro suite: the hot building blocks of the BLTC —
// kernel evaluations, barycentric basis, per-cluster modified charges (both
// algebraic forms), tree construction, traversal, and RCB.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/barycentric.hpp"
#include "core/batches.hpp"
#include "core/chebyshev.hpp"
#include "core/direct_sum.hpp"
#include "core/interaction_lists.hpp"
#include "core/kernels.hpp"
#include "core/moments.hpp"
#include "core/tree.hpp"
#include "partition/rcb.hpp"
#include "util/workloads.hpp"

namespace bltc {
namespace {

void BM_KernelEval(benchmark::State& state) {
  const KernelSpec spec = (state.range(0) == 0) ? KernelSpec::coulomb()
                                                : KernelSpec::yukawa(0.5);
  double r2 = 1.0;
  double acc = 0.0;
  for (auto _ : state) {
    with_kernel(spec, [&](auto k) {
      for (int i = 0; i < 1000; ++i) {
        acc += k(r2);
        r2 += 1e-9;
      }
    });
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_KernelEval)->Arg(0)->Arg(1);

void BM_BarycentricBasis(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  const auto pts = chebyshev2_points(degree);
  const auto wts = chebyshev2_weights(degree);
  std::vector<double> out(pts.size());
  double t = 0.1234;
  for (auto _ : state) {
    barycentric_basis(pts, wts, t, out);
    benchmark::DoNotOptimize(out.data());
    t += 1e-9;
  }
}
BENCHMARK(BM_BarycentricBasis)->Arg(4)->Arg(8)->Arg(13);

void BM_ChebyshevPoints(benchmark::State& state) {
  std::vector<double> out(9);
  for (auto _ : state) {
    chebyshev2_points_into(8, -1.0, 1.0, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ChebyshevPoints);

struct MomentFixture {
  OrderedParticles sources;
  ClusterTree tree;
  MomentFixture() {
    const Cloud c = uniform_cube(2000, 1);
    sources = OrderedParticles::from_cloud(c);
    TreeParams tp;
    tp.max_leaf = 2000;
    tree = ClusterTree::build(sources, tp);
  }
};

void BM_MomentsDirect(benchmark::State& state) {
  static const MomentFixture f;
  const int degree = static_cast<int>(state.range(0));
  const ClusterMoments grids = ClusterMoments::grids_only(f.tree, degree);
  std::vector<double> out(grids.points_per_cluster());
  for (auto _ : state) {
    ClusterMoments::compute_cluster_direct(f.tree, f.sources, degree, 0,
                                           grids.grid(0, 0), grids.grid(0, 1),
                                           grids.grid(0, 2), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_MomentsDirect)->Arg(4)->Arg(8);

void BM_MomentsFactorized(benchmark::State& state) {
  static const MomentFixture f;
  const int degree = static_cast<int>(state.range(0));
  const ClusterMoments grids = ClusterMoments::grids_only(f.tree, degree);
  std::vector<double> out(grids.points_per_cluster());
  for (auto _ : state) {
    ClusterMoments::compute_cluster_factorized(
        f.tree, f.sources, degree, 0, grids.grid(0, 0), grids.grid(0, 1),
        grids.grid(0, 2), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_MomentsFactorized)->Arg(4)->Arg(8);

void BM_TreeBuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Cloud c = uniform_cube(n, 2);
  for (auto _ : state) {
    OrderedParticles p = OrderedParticles::from_cloud(c);
    TreeParams tp;
    tp.max_leaf = 500;
    const ClusterTree tree = ClusterTree::build(p, tp);
    benchmark::DoNotOptimize(tree.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_TreeBuild)->Arg(10000)->Arg(50000);

void BM_Traversal(benchmark::State& state) {
  const Cloud c = uniform_cube(30000, 3);
  OrderedParticles src = OrderedParticles::from_cloud(c);
  TreeParams tp;
  tp.max_leaf = 500;
  const ClusterTree tree = ClusterTree::build(src, tp);
  OrderedParticles tgt = OrderedParticles::from_cloud(c);
  const auto batches = build_target_batches(tgt, 500);
  for (auto _ : state) {
    const InteractionLists lists =
        build_interaction_lists(batches, tree, 0.8, 8);
    benchmark::DoNotOptimize(lists.total_approx);
  }
}
BENCHMARK(BM_Traversal);

void BM_Rcb(benchmark::State& state) {
  const std::size_t nparts = static_cast<std::size_t>(state.range(0));
  const Cloud c = uniform_cube(50000, 4);
  const Box3 domain = Box3::cube(-1.0, 1.0);
  for (auto _ : state) {
    const RcbResult r = rcb_partition(c.x, c.y, c.z, nparts, domain);
    benchmark::DoNotOptimize(r.assignment.data());
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_Rcb)->Arg(4)->Arg(32);

void BM_DirectSum(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Cloud c = uniform_cube(n, 5);
  for (auto _ : state) {
    const auto phi = direct_sum(c, c, KernelSpec::coulomb());
    benchmark::DoNotOptimize(phi.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n * n));
}
BENCHMARK(BM_DirectSum)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace bltc

BENCHMARK_MAIN();
