// Figure 4 reproduction: run time vs error for 1M random particles in a
// cube, Coulomb (a) and Yukawa kappa=0.5 (b), curves of constant MAC
// theta in {0.5, 0.7, 0.9} with degree n = 1:2:13 (or until machine
// precision), GPU (Titan V, modeled) vs 6-core CPU (Xeon X5650, modeled)
// vs direct summation reference lines.
//
// Measured host seconds are real wall clock for the full algorithm on this
// machine (scaled-down N); modeled seconds project the measured operation
// counts onto the paper's hardware. Paper claims to check: (1) BLTC beats
// direct summation across the whole error range, (2) GPU >= 100x CPU,
// (3) Yukawa ~1.8x (CPU) / ~1.5x (GPU) slower than Coulomb.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/direct_sum.hpp"
#include "core/gpu_engine.hpp"
#include "core/solver.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace bltc;

namespace {

struct DirectModel {
  double gpu_seconds;  ///< one giant batch-cluster direct kernel (paper)
  double cpu_seconds;  ///< 6-core direct summation
};

DirectModel model_direct(std::size_t n, const KernelSpec& kernel) {
  const double pairs = static_cast<double>(n) * static_cast<double>(n);
  const gpusim::DeviceSpec gpu = gpusim::DeviceSpec::titan_v();
  const gpusim::DeviceSpec cpu = gpusim::DeviceSpec::xeon_x5650_6core();
  DirectModel m;
  m.gpu_seconds = pairs * kernel_eval_weight(kernel, true) / gpu.evals_per_sec;
  m.cpu_seconds =
      pairs * kernel_eval_weight(kernel, false) / cpu.evals_per_sec;
  return m;
}

void run_kernel_panel(const Cloud& cloud, const KernelSpec& kernel,
                      int max_degree, std::size_t batch_size) {
  std::printf("\n--- %s, N = %zu, N_B = N_L = %zu ---\n",
              kernel.name().c_str(), cloud.size(), batch_size);

  const DirectModel ds = model_direct(cloud.size(), kernel);
  std::printf("direct sum reference: modeled GPU %.3f s, modeled 6-core CPU "
              "%.3f s\n\n",
              ds.gpu_seconds, ds.cpu_seconds);

  bench::Table table({"theta", "n", "error", "t_gpu_model[s]",
                      "t_cpu_model[s]", "gpu_speedup", "host_measured[s]",
                      "launches"});

  const gpusim::DeviceSpec cpu_dev = gpusim::DeviceSpec::xeon_x5650_6core();
  for (const double theta : {0.5, 0.7, 0.9}) {
    for (int n = 1; n <= max_degree; n += 2) {
      TreecodeParams params;
      params.theta = theta;
      params.degree = n;
      params.max_leaf = batch_size;
      params.max_batch = batch_size;

      SolverConfig config;
      config.kernel = kernel;
      config.params = params;
      config.backend = Backend::kGpuSim;
      RunStats stats;
      WallTimer timer;
      Solver solver(config);
      solver.set_sources(cloud);
      const auto phi = solver.evaluate(cloud, &stats);
      const double host_seconds = timer.seconds();
      const double err = bench::sampled_error(cloud, phi, kernel);

      // 6-core CPU model: the potential evaluation dominates the paper's
      // CPU runs; weight the counted kernel evaluations by the CPU per-eval
      // cost ratio.
      const double cpu_evals = (stats.approx_evals + stats.direct_evals) *
                               kernel_eval_weight(kernel, false);
      const double t_cpu = cpu_evals / cpu_dev.evals_per_sec;
      const double t_gpu = stats.modeled.total();

      table.add_row({bench::Table::num(theta, 1), std::to_string(n),
                     bench::Table::sci(err), bench::Table::num(t_gpu, 4),
                     bench::Table::num(t_cpu, 3),
                     bench::Table::num(t_cpu / t_gpu, 0),
                     bench::Table::num(host_seconds, 2),
                     std::to_string(stats.gpu_launches)});

      if (err < 5e-15) break;  // machine precision reached (paper's rule)
    }
  }
  table.print();
}

}  // namespace

int main() {
  bench::banner(
      "Fig. 4 — BLTC run time vs error, single GPU (Titan V, modeled) vs "
      "6-core CPU (modeled)",
      "BLTC_FIG4_N (default 100000; paper used 1000000), BLTC_FIG4_NMAX "
      "(default 9; paper 13), BLTC_FIG4_BATCH (default 2000)");

  const std::size_t n = env_size("BLTC_FIG4_N", 100000);
  const int max_degree =
      static_cast<int>(env_size("BLTC_FIG4_NMAX", 9));
  const std::size_t batch = env_size("BLTC_FIG4_BATCH", 2000);
  const Cloud cloud = uniform_cube(n, 4242);

  run_kernel_panel(cloud, KernelSpec::coulomb(), max_degree, batch);
  run_kernel_panel(cloud, KernelSpec::yukawa(0.5), max_degree, batch);

  std::printf(
      "\nShape checks vs paper: treecode beats the direct-sum lines over the "
      "whole error range;\nGPU speedup >= 100x; Yukawa rows ~1.5x (GPU) / "
      "~1.8x (CPU) above Coulomb rows.\n");
  return 0;
}
