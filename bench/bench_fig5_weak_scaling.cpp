// Figure 5 reproduction: weak scaling of the distributed BLTC — the number
// of particles per GPU is held fixed (paper: 8, 16, 32 million) while ranks
// grow 1 -> 32. Paper parameters theta = 0.8, n = 8, N_L = N_B = 4000
// (5-6 digit accuracy). The paper's shape: run time grows only modestly
// with rank count (O(N log N) total work, LET communication logarithmic);
// largest run 1.024 B particles in 345 s (Coulomb) / 380 s (Yukawa).
//
// Here ranks are simmpi threads with one modeled P100 each; modeled times
// come from real per-rank operation/byte counts (DESIGN.md §1).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "dist/dist_solver.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

using namespace bltc;

int main() {
  bench::banner(
      "Fig. 5 — weak scaling on P100 ranks (modeled), theta=0.8, n=8",
      "BLTC_FIG5_PER_RANK (default 5000; paper 8/16/32 million), "
      "BLTC_FIG5_MAXRANKS (default 8; paper 32), BLTC_FIG5_BATCH (default "
      "1000)");

  const std::size_t base_per_rank = env_size("BLTC_FIG5_PER_RANK", 5000);
  const int max_ranks = static_cast<int>(env_size("BLTC_FIG5_MAXRANKS", 8));
  const std::size_t batch = env_size("BLTC_FIG5_BATCH", 1000);

  for (const KernelSpec kernel :
       {KernelSpec::coulomb(), KernelSpec::yukawa(0.5)}) {
    std::printf("\n--- %s ---\n", kernel.name().c_str());
    bench::Table table({"particles/rank", "ranks", "N_total", "error",
                        "t_model[s]", "setup[s]", "precomp[s]", "compute[s]",
                        "host_measured[s]"});
    // Paper sweeps three per-rank sizes (8, 16, 32 M); we sweep base, 2x, 4x.
    for (const std::size_t per_rank :
         {base_per_rank, 2 * base_per_rank, 4 * base_per_rank}) {
      for (int ranks = 1; ranks <= max_ranks; ranks *= 2) {
        const std::size_t n_total = per_rank * static_cast<std::size_t>(ranks);
        const Cloud cloud = uniform_cube(n_total, 555);

        dist::DistParams params;
        params.treecode.theta = 0.8;
        params.treecode.degree = 8;
        params.treecode.max_leaf = batch;
        params.treecode.max_batch = batch;
        params.backend = Backend::kGpuSim;
        params.device = gpusim::DeviceSpec::p100();

        WallTimer timer;
        const dist::DistResult res =
            dist::compute_potential_distributed(cloud, kernel, params, ranks);
        const double host_seconds = timer.seconds();
        const double err = bench::sampled_error(cloud, res.potential, kernel,
                                                500);

        table.add_row({std::to_string(per_rank), std::to_string(ranks),
                       std::to_string(n_total), bench::Table::sci(err),
                       bench::Table::num(res.modeled.total(), 4),
                       bench::Table::num(res.modeled.setup, 4),
                       bench::Table::num(res.modeled.precompute, 4),
                       bench::Table::num(res.modeled.compute, 4),
                       bench::Table::num(host_seconds, 2)});
      }
    }
    table.print();
  }

  std::printf(
      "\nShape check vs paper: for fixed particles/rank, t_model grows only "
      "modestly with ranks\n(setup/communication grows, compute stays ~flat) "
      "— the weak-scaling signature of O(N log N).\n");
  return 0;
}
