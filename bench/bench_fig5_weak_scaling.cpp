// Figure 5 reproduction: weak scaling of the distributed BLTC — the number
// of particles per GPU is held fixed (paper: 8, 16, 32 million) while ranks
// grow 1 -> 32. Paper parameters theta = 0.8, n = 8, N_L = N_B = 4000
// (5-6 digit accuracy). The paper's shape: run time grows only modestly
// with rank count (O(N log N) total work, LET communication logarithmic);
// largest run 1.024 B particles in 345 s (Coulomb) / 380 s (Yukawa).
//
// Here ranks are simmpi threads with one modeled P100 each; modeled times
// come from real per-rank operation/byte counts (DESIGN.md §1). Every run
// goes through the persistent DistSolver handle, and a repeat evaluation on
// the cached plan is timed alongside — the steady-state per-step cost a
// time-stepping driver would pay. Results land in BENCH_fig5.json
// (override with --json) for cross-PR tracking.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "dist/dist_solver.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

using namespace bltc;

int main(int argc, char** argv) {
  bench::banner(
      "Fig. 5 — weak scaling on P100 ranks (modeled), theta=0.8, n=8",
      "BLTC_FIG5_PER_RANK (default 5000; paper 8/16/32 million), "
      "BLTC_FIG5_MAXRANKS (default 8; paper 32), BLTC_FIG5_BATCH (default "
      "1000)");

  const std::size_t base_per_rank = env_size("BLTC_FIG5_PER_RANK", 5000);
  const int max_ranks = static_cast<int>(env_size("BLTC_FIG5_MAXRANKS", 8));
  const std::size_t batch = env_size("BLTC_FIG5_BATCH", 1000);

  bench::JsonReport report("bench_fig5_weak_scaling");
  report.note("per_rank_base", std::to_string(base_per_rank));
  report.note("max_ranks", std::to_string(max_ranks));

  const std::pair<const char*, KernelSpec> kernels[] = {
      {"coulomb", KernelSpec::coulomb()}, {"yukawa", KernelSpec::yukawa(0.5)}};
  for (const auto& [kernel_tag, kernel] : kernels) {
    std::printf("\n--- %s ---\n", kernel.name().c_str());
    bench::Table table({"particles/rank", "ranks", "N_total", "error",
                        "t_model[s]", "setup[s]", "precomp[s]", "compute[s]",
                        "t_repeat[s]", "host_measured[s]"});
    // Paper sweeps three per-rank sizes (8, 16, 32 M); we sweep base, 2x, 4x.
    for (const std::size_t per_rank :
         {base_per_rank, 2 * base_per_rank, 4 * base_per_rank}) {
      for (int ranks = 1; ranks <= max_ranks; ranks *= 2) {
        const std::size_t n_total = per_rank * static_cast<std::size_t>(ranks);
        const Cloud cloud = uniform_cube(n_total, 555);

        dist::DistConfig config;
        config.kernel = kernel;
        config.params.treecode.theta = 0.8;
        config.params.treecode.degree = 8;
        config.params.treecode.max_leaf = batch;
        config.params.treecode.max_batch = batch;
        config.params.backend = Backend::kGpuSim;
        config.params.device = gpusim::DeviceSpec::p100();
        config.nranks = ranks;

        WallTimer timer;
        dist::DistSolver solver(config);
        solver.set_sources(cloud);
        dist::DistStats first;
        const std::vector<double> phi = solver.evaluate(&first);
        const double host_seconds = timer.seconds();
        // Steady state: the cached plan re-executes with zero RMA and zero
        // tree work — kernels and the result download only.
        dist::DistStats repeat;
        solver.evaluate(&repeat);
        const double err = bench::sampled_error(cloud, phi, kernel, 500);

        table.add_row({std::to_string(per_rank), std::to_string(ranks),
                       std::to_string(n_total), bench::Table::sci(err),
                       bench::Table::num(first.modeled.total(), 4),
                       bench::Table::num(first.modeled.setup, 4),
                       bench::Table::num(first.modeled.precompute, 4),
                       bench::Table::num(first.modeled.compute, 4),
                       bench::Table::num(repeat.modeled.total(), 4),
                       bench::Table::num(host_seconds, 2)});

        // Stable short tag (not kernel.name(): its parameter formatting
        // would leak into the cross-PR metric history).
        const std::string tag = std::string(kernel_tag) + "_n" +
                                std::to_string(per_rank) + "_r" +
                                std::to_string(ranks);
        report.metric(tag + "_model_total_seconds", first.modeled.total());
        report.metric(tag + "_model_repeat_seconds", repeat.modeled.total());
        report.metric(tag + "_error", err);
      }
    }
    table.print();
  }

  std::printf(
      "\nShape check vs paper: for fixed particles/rank, t_model grows only "
      "modestly with ranks\n(setup/communication grows, compute stays ~flat) "
      "— the weak-scaling signature of O(N log N).\nt_repeat drops the "
      "plan/LET cost entirely: the handle's steady-state per-step price.\n");

  const std::string json_path =
      bench::json_output_path(argc, argv, "BENCH_fig5.json");
  if (!json_path.empty()) report.write(json_path);
  return 0;
}
