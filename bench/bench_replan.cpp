// Plan/execute amortization bench: the point of the Solver handle. A
// dynamics or BEM driver evaluates many times against the same (or slowly
// changing) sources; the one-shot free function re-runs all three phases
// every call, while a held Solver pays setup + precompute once. This bench
// measures both patterns on both backends and reports per-call phase
// seconds, fresh host-to-device traffic, and launch granularity — on an
// unchanged Solver the repeat evaluations must show setup ~ 0, precompute
// ~ 0, and zero fresh HtD source bytes. Results are written to
// BENCH_replan.json (override with --json) for cross-PR tracking.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "dist/dist_solver.hpp"
#include "util/env.hpp"

using namespace bltc;

int main(int argc, char** argv) {
  bench::banner(
      "Plan/execute amortization — one-shot calls vs a held Solver",
      "BLTC_REPLAN_N (default 30000), BLTC_REPLAN_CALLS (default 5)");

  const std::size_t n = env_size("BLTC_REPLAN_N", 30000);
  const int calls = static_cast<int>(env_size("BLTC_REPLAN_CALLS", 5));
  const Cloud cloud = uniform_cube(n, 4242);
  const KernelSpec kernel = KernelSpec::coulomb();

  TreecodeParams params;
  params.theta = 0.7;
  params.degree = 8;
  params.max_leaf = 2000;
  params.max_batch = 2000;

  bench::JsonReport report("bench_replan");
  report.note("n", std::to_string(n));
  report.note("calls", std::to_string(calls));

  for (const Backend backend : {Backend::kCpu, Backend::kGpuSim}) {
    const bool gpu = backend == Backend::kGpuSim;
    const std::string tag = gpu ? "gpusim" : "cpu";
    std::printf("\n--- backend: %s, N = %zu, %d evaluations ---\n",
                tag.c_str(), n, calls);

    bench::Table table({"pattern", "call", "setup[s]", "precompute[s]",
                        "compute[s]", "launches", "HtD KiB", "DtH KiB"});
    const auto add_row = [&](const char* pattern, int call,
                             const RunStats& stats) {
      table.add_row(
          {pattern, std::to_string(call),
           bench::Table::num(stats.setup_seconds, 4),
           bench::Table::num(stats.precompute_seconds, 4),
           bench::Table::num(stats.compute_seconds, 4),
           std::to_string(stats.approx_launches + stats.direct_launches),
           bench::Table::num(
               static_cast<double>(stats.bytes_to_device) / 1024.0, 1),
           bench::Table::num(
               static_cast<double>(stats.bytes_to_host) / 1024.0, 1)});
    };

    // Pattern 1: fresh one-shot call per evaluation (the seed behavior —
    // every call rebuilds the tree, lists, and charges and re-uploads all
    // device data).
    double oneshot_total = 0.0;
    for (int c = 0; c < calls; ++c) {
      RunStats stats;
      compute_potential(cloud, kernel, params, backend, &stats);
      oneshot_total += stats.total_seconds();
      add_row("one-shot", c, stats);
    }

    // Pattern 2: one Solver, repeated evaluate. The first call carries the
    // plan cost; the rest execute the cached plan.
    SolverConfig config;
    config.kernel = kernel;
    config.params = params;
    config.backend = backend;
    Solver solver(config);
    solver.set_sources(cloud);
    double held_total = 0.0;
    RunStats last{};
    for (int c = 0; c < calls; ++c) {
      RunStats stats;
      solver.evaluate(cloud, &stats);
      held_total += stats.total_seconds();
      add_row("held-solver", c, stats);
      last = stats;
    }
    table.print();
    std::printf("total measured: one-shot %.3f s, held solver %.3f s "
                "(%.0f%% saved)\n",
                oneshot_total, held_total,
                100.0 * (oneshot_total - held_total) / oneshot_total);

    report.metric(tag + "_oneshot_total_seconds", oneshot_total);
    report.metric(tag + "_held_total_seconds", held_total);
    report.metric(tag + "_repeat_compute_seconds", last.compute_seconds);
    // Launch granularity: how much work one kernel launch amortizes.
    report.metric(tag + "_approx_launches",
                  static_cast<double>(last.approx_launches));
    report.metric(tag + "_direct_launches",
                  static_cast<double>(last.direct_launches));
    if (last.approx_launches > 0) {
      report.metric(tag + "_approx_evals_per_launch",
                    last.approx_evals /
                        static_cast<double>(last.approx_launches));
    }
    if (last.direct_launches > 0) {
      report.metric(tag + "_direct_evals_per_launch",
                    last.direct_evals /
                        static_cast<double>(last.direct_launches));
    }
  }

  // ---- Distributed replan vs reuse: the same amortization argument at
  // multi-rank scale. A one-shot compute_potential_distributed pays RCB,
  // trees, LET exchange, and precompute every call; a held DistSolver pays
  // them once and re-executes cached per-rank plans (zero RMA, zero tree
  // work) on every repeat. update_charges sits in between: it keeps all
  // geometry and re-fetches only charge bytes.
  {
    const int nranks = static_cast<int>(env_size("BLTC_REPLAN_RANKS", 4));
    std::printf("\n--- distributed (cpu backend, %d ranks), N = %zu, %d "
                "evaluations ---\n",
                nranks, n, calls);
    dist::DistConfig config;
    config.kernel = kernel;
    config.params.treecode = params;
    config.params.backend = Backend::kCpu;
    config.nranks = nranks;

    bench::Table table({"pattern", "call", "setup[s]", "precompute[s]",
                        "compute[s]", "RMA gets", "RMA KiB", "trees"});
    const auto add_row = [&](const char* pattern, int call,
                             const dist::DistStats& stats) {
      std::size_t gets = 0, bytes = 0, trees = 0;
      for (const dist::RankStats& st : stats.per_rank) {
        gets += st.rma_gets;
        bytes += st.rma_bytes;
        trees += st.tree_builds;
      }
      table.add_row({pattern, std::to_string(call),
                     bench::Table::num(stats.setup_seconds, 4),
                     bench::Table::num(stats.precompute_seconds, 4),
                     bench::Table::num(stats.compute_seconds, 4),
                     std::to_string(gets),
                     bench::Table::num(static_cast<double>(bytes) / 1024.0,
                                       1),
                     std::to_string(trees)});
    };
    const auto total_of = [](const dist::DistStats& stats) {
      return stats.setup_seconds + stats.precompute_seconds +
             stats.compute_seconds;
    };

    double oneshot_total = 0.0;
    for (int c = 0; c < calls; ++c) {
      dist::DistSolver oneshot(config);
      oneshot.set_sources(cloud);
      dist::DistStats stats;
      oneshot.evaluate(&stats);
      oneshot_total += total_of(stats);
      add_row("one-shot", c, stats);
    }

    dist::DistSolver held(config);
    held.set_sources(cloud);
    double held_total = 0.0;
    dist::DistStats last{};
    for (int c = 0; c < calls; ++c) {
      dist::DistStats stats;
      held.evaluate(&stats);
      held_total += total_of(stats);
      add_row("held-solver", c, stats);
      last = stats;
    }
    table.print();
    std::printf("total measured: one-shot %.3f s, held solver %.3f s "
                "(%.0f%% saved)\n",
                oneshot_total, held_total,
                100.0 * (oneshot_total - held_total) / oneshot_total);

    report.metric("dist_oneshot_total_seconds", oneshot_total);
    report.metric("dist_held_total_seconds", held_total);
    report.metric("dist_repeat_compute_seconds", last.compute_seconds);
  }

  std::printf(
      "\nShape check: held-solver calls 1..%d report setup ~ 0, precompute "
      "~ 0, and (gpusim) 0 KiB\nfresh HtD — only the potentials' DtH "
      "remains. One-shot calls repeat the full pipeline;\nthe distributed "
      "held solver additionally repeats with zero RMA and zero tree "
      "builds.\n",
      calls - 1);

  const std::string json_path =
      bench::json_output_path(argc, argv, "BENCH_replan.json");
  if (!json_path.empty()) report.write(json_path);
  return 0;
}
