// Mixed-precision frontier: speed vs error for the three precision
// policies across both traversals and both backends —
//   {fp64, mixed, fp32far} x {batched, dual} x {CPU, GpuSim}.
//
// The quantity that moves is the *far-field* interaction rate: fp32 tiles
// double the SIMD lanes and halve the bandwidth of the dominant
// batch-cluster work (and run at the 2:1 FP32:FP64 modeled throughput on
// the simulated device), while direct tiles stay fp64 under every policy.
// kMixed demotes a tile back to fp64 whenever the fp32 representation
// error on top of the error ladder's truncation bound would exceed the
// nominal (theta, n) target, so its error column should track fp64's;
// kFp32Far takes the whole far field to fp32 unconditionally and marks
// the accuracy floor of the trade.
//
// Results are written to BENCH_precision.json (override with --json) for
// cross-PR tracking. BLTC_PREC_N / BLTC_PREC_REPS rescale the run.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "util/env.hpp"

using namespace bltc;

namespace {

const char* policy_tag(PrecisionPolicy policy) {
  switch (policy) {
    case PrecisionPolicy::kFp64: return "fp64";
    case PrecisionPolicy::kMixed: return "mixed";
    case PrecisionPolicy::kFp32Far: return "fp32far";
  }
  return "?";
}

struct Cell {
  double error = 0.0;
  double compute_seconds = 0.0;  ///< min over reps (modeled on GpuSim)
  double far_evals = 0.0;
  double far_rate = 0.0;
  double fp32_evals = 0.0;
  double fp64_evals = 0.0;
  std::size_t demotions = 0;
};

Cell run_cell(const Cloud& cloud, const KernelSpec& kernel, Backend backend,
              TraversalMode traversal, PrecisionPolicy policy, int reps) {
  TreecodeParams params;
  params.theta = 0.8;
  params.degree = 8;
  params.max_leaf = 2000;
  params.max_batch = 2000;
  params.traversal = traversal;
  params.precision = policy;

  SolverConfig config;
  config.kernel = kernel;
  config.params = params;
  config.backend = backend;
  Solver solver(config);
  solver.set_sources(cloud);

  Cell cell;
  std::vector<double> phi;
  for (int r = 0; r < reps; ++r) {
    RunStats stats;
    phi = solver.evaluate(cloud, &stats);
    const double compute = backend == Backend::kGpuSim
                               ? stats.modeled.compute
                               : stats.compute_seconds;
    if (r == 0 || compute < cell.compute_seconds) {
      cell.compute_seconds = compute;
    }
    cell.far_evals = stats.approx_evals + stats.cp_evals + stats.cc_evals;
    cell.fp32_evals = stats.fp32_evals;
    cell.fp64_evals = stats.fp64_evals;
    cell.demotions = stats.precision_demotions;
  }
  cell.far_rate = cell.far_evals / cell.compute_seconds;
  cell.error = bench::sampled_error(cloud, phi, kernel, 500);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Mixed-precision frontier — per-interaction fp32 tiles vs fp64",
      "BLTC_PREC_N (default 60000), BLTC_PREC_REPS (default 3)");

  const std::size_t n = env_size("BLTC_PREC_N", 60000);
  const int reps = static_cast<int>(env_size("BLTC_PREC_REPS", 3));
  const Cloud cloud = uniform_cube(n, 2718);
  const KernelSpec kernel = KernelSpec::coulomb();

  bench::JsonReport report("bench_precision");
  report.note("n", std::to_string(n));
  report.note("reps", std::to_string(reps));
  report.note("kernel", kernel.name());
  report.note("theta_degree", "0.8 / 8");
  report.note("compute_units",
              "cpu: wall seconds; gpu: modeled Titan V seconds");

  bench::Table table({"backend", "traversal", "policy", "error",
                      "compute[s]", "far_rate[evals/s]", "fp32_evals",
                      "demotions"});

  // cpu/gpu x batched/dual x fp64 cells, indexed for the speedup summary.
  double base_rate[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
  double mixed_rate[2][2] = {{0.0, 0.0}, {0.0, 0.0}};

  for (const Backend backend : {Backend::kCpu, Backend::kGpuSim}) {
    for (const TraversalMode traversal :
         {TraversalMode::kBatched, TraversalMode::kDual}) {
      for (const PrecisionPolicy policy :
           {PrecisionPolicy::kFp64, PrecisionPolicy::kMixed,
            PrecisionPolicy::kFp32Far}) {
        const Cell cell =
            run_cell(cloud, kernel, backend, traversal, policy, reps);
        const char* backend_tag =
            backend == Backend::kGpuSim ? "gpu" : "cpu";
        const char* traversal_tag =
            traversal == TraversalMode::kDual ? "dual" : "batched";
        table.add_row({backend_tag, traversal_tag, policy_tag(policy),
                       bench::Table::sci(cell.error),
                       bench::Table::num(cell.compute_seconds, 4),
                       bench::Table::sci(cell.far_rate),
                       bench::Table::sci(cell.fp32_evals),
                       std::to_string(cell.demotions)});
        const std::string prefix = std::string(backend_tag) + "_" +
                                   traversal_tag + "_" + policy_tag(policy);
        report.metric(prefix + "_error", cell.error);
        report.metric(prefix + "_compute_seconds", cell.compute_seconds);
        report.metric(prefix + "_far_rate", cell.far_rate);
        report.metric(prefix + "_fp32_evals", cell.fp32_evals);
        report.metric(prefix + "_fp64_evals", cell.fp64_evals);
        report.metric(prefix + "_demotions",
                      static_cast<double>(cell.demotions));

        const int bi = backend == Backend::kGpuSim ? 1 : 0;
        const int ti = traversal == TraversalMode::kDual ? 1 : 0;
        if (policy == PrecisionPolicy::kFp64) {
          base_rate[bi][ti] = cell.far_rate;
        } else if (policy == PrecisionPolicy::kMixed) {
          mixed_rate[bi][ti] = cell.far_rate;
        }
      }
    }
  }
  table.print();

  // Headline: kMixed's far-field interaction rate over kFp64 at the same
  // nominal (theta, n) target. The acceptance bar is >= 1.5x on the CPU.
  const double cpu_batched = mixed_rate[0][0] / base_rate[0][0];
  const double cpu_dual = mixed_rate[0][1] / base_rate[0][1];
  const double gpu_batched = mixed_rate[1][0] / base_rate[1][0];
  const double gpu_dual = mixed_rate[1][1] / base_rate[1][1];
  std::printf(
      "\nkMixed far-field rate over kFp64: cpu batched %.2fx, cpu dual "
      "%.2fx; gpu (modeled) batched %.2fx, dual %.2fx\n",
      cpu_batched, cpu_dual, gpu_batched, gpu_dual);
  report.metric("cpu_batched_mixed_far_speedup", cpu_batched);
  report.metric("cpu_dual_mixed_far_speedup", cpu_dual);
  report.metric("gpu_batched_mixed_far_speedup", gpu_batched);
  report.metric("gpu_dual_mixed_far_speedup", gpu_dual);

  const std::string json_path =
      bench::json_output_path(argc, argv, "BENCH_precision.json");
  if (!json_path.empty()) report.write(json_path);
  return 0;
}
