// Figure 6 reproduction: strong scaling of the distributed BLTC on up to 32
// P100 GPUs (modeled). Panels (a,b): run time and parallel efficiency vs
// rank count for two system sizes (paper: 16M and 64M particles; the larger
// system holds 83-84% efficiency at 32 GPUs, the smaller drops to 64-73%).
// Panels (c,d): percentage of time in the setup / precompute / compute
// phases for the larger system — compute dominates at few ranks, and the
// setup (communication) and precompute (under-filled GPU kernels) fractions
// grow as ranks increase.
//
// Every run goes through the persistent DistSolver handle; the efficiency
// series is also reported to BENCH_fig6.json (override with --json).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dist/dist_solver.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

using namespace bltc;

namespace {

struct Run {
  int ranks;
  dist::DistStats stats;
  double error;
};

std::vector<Run> scale_series(const Cloud& cloud, const KernelSpec& kernel,
                              int max_ranks, std::size_t batch) {
  std::vector<Run> runs;
  for (int ranks = 1; ranks <= max_ranks; ranks *= 2) {
    dist::DistConfig config;
    config.kernel = kernel;
    config.params.treecode.theta = 0.8;
    config.params.treecode.degree = 8;
    config.params.treecode.max_leaf = batch;
    config.params.treecode.max_batch = batch;
    config.params.backend = Backend::kGpuSim;
    config.params.device = gpusim::DeviceSpec::p100();
    config.nranks = ranks;

    dist::DistSolver solver(config);
    solver.set_sources(cloud);
    Run run;
    run.ranks = ranks;
    const std::vector<double> phi = solver.evaluate(&run.stats);
    run.error = bench::sampled_error(cloud, phi, kernel, 500);
    runs.push_back(std::move(run));
  }
  return runs;
}

void print_efficiency_panel(const char* label, const std::vector<Run>& small,
                            const std::vector<Run>& large,
                            std::size_t n_small, std::size_t n_large) {
  std::printf("\nFig. 6%s — run time and efficiency (error at n=8, "
              "theta=0.8)\n",
              label);
  bench::Table table({"ranks", "t_small[s]", "eff_small", "t_large[s]",
                      "eff_large"});
  const double t1_small = small.front().stats.modeled.total();
  const double t1_large = large.front().stats.modeled.total();
  for (std::size_t i = 0; i < small.size(); ++i) {
    const double ts = small[i].stats.modeled.total();
    const double tl = large[i].stats.modeled.total();
    const double p = static_cast<double>(small[i].ranks);
    table.add_row({std::to_string(small[i].ranks),
                   bench::Table::num(ts, 4),
                   bench::Table::num(100.0 * t1_small / (p * ts), 0) + "%",
                   bench::Table::num(tl, 4),
                   bench::Table::num(100.0 * t1_large / (p * tl), 0) + "%"});
  }
  table.print();
  std::printf("(small = %zu particles, err %.1e; large = %zu particles, "
              "err %.1e)\n",
              n_small, small.front().error, n_large, large.front().error);
}

void print_phase_panel(const char* label, const std::vector<Run>& large) {
  std::printf("\nFig. 6%s — phase distribution for the large system\n", label);
  bench::Table table({"ranks", "total[s]", "setup%", "precompute%",
                      "compute%"});
  for (const Run& run : large) {
    const ModeledTimes& m = run.stats.modeled;
    const double total = m.total();
    table.add_row({std::to_string(run.ranks), bench::Table::num(total, 4),
                   bench::Table::num(100.0 * m.setup / total, 1),
                   bench::Table::num(100.0 * m.precompute / total, 1),
                   bench::Table::num(100.0 * m.compute / total, 1)});
  }
  table.print();
}

void report_series(bench::JsonReport& report, const std::string& tag,
                   const std::vector<Run>& runs) {
  const double t1 = runs.front().stats.modeled.total();
  for (const Run& run : runs) {
    const double t = run.stats.modeled.total();
    const std::string key = tag + "_r" + std::to_string(run.ranks);
    report.metric(key + "_model_total_seconds", t);
    report.metric(key + "_efficiency",
                  t1 / (static_cast<double>(run.ranks) * t));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Fig. 6 — strong scaling on up to 32 P100 ranks (modeled), theta=0.8, "
      "n=8",
      "BLTC_FIG6_N_SMALL (default 12000; paper 16M), BLTC_FIG6_N_LARGE "
      "(default 48000; paper 64M), BLTC_FIG6_MAXRANKS (default 8; paper 32), "
      "BLTC_FIG6_BATCH (default 1000)");

  const std::size_t n_small = env_size("BLTC_FIG6_N_SMALL", 12000);
  const std::size_t n_large = env_size("BLTC_FIG6_N_LARGE", 48000);
  const int max_ranks = static_cast<int>(env_size("BLTC_FIG6_MAXRANKS", 8));
  const std::size_t batch = env_size("BLTC_FIG6_BATCH", 1000);

  const Cloud small_cloud = uniform_cube(n_small, 66);
  const Cloud large_cloud = uniform_cube(n_large, 67);

  bench::JsonReport report("bench_fig6_strong_scaling");
  report.note("n_small", std::to_string(n_small));
  report.note("n_large", std::to_string(n_large));
  report.note("max_ranks", std::to_string(max_ranks));

  const auto coulomb_small =
      scale_series(small_cloud, KernelSpec::coulomb(), max_ranks, batch);
  const auto coulomb_large =
      scale_series(large_cloud, KernelSpec::coulomb(), max_ranks, batch);
  print_efficiency_panel("a (Coulomb)", coulomb_small, coulomb_large, n_small,
                         n_large);
  print_phase_panel("c (Coulomb)", coulomb_large);
  report_series(report, "coulomb_small", coulomb_small);
  report_series(report, "coulomb_large", coulomb_large);

  const auto yukawa_small =
      scale_series(small_cloud, KernelSpec::yukawa(0.5), max_ranks, batch);
  const auto yukawa_large =
      scale_series(large_cloud, KernelSpec::yukawa(0.5), max_ranks, batch);
  print_efficiency_panel("b (Yukawa)", yukawa_small, yukawa_large, n_small,
                         n_large);
  print_phase_panel("d (Yukawa)", yukawa_large);
  report_series(report, "yukawa_small", yukawa_small);
  report_series(report, "yukawa_large", yukawa_large);

  std::printf(
      "\nShape checks vs paper: the larger system keeps higher efficiency at "
      "high rank counts;\ncompute dominates at 1 rank and the setup + "
      "precompute fractions grow with ranks.\n");

  const std::string json_path =
      bench::json_output_path(argc, argv, "BENCH_fig6.json");
  if (!json_path.empty()) report.write(json_path);
  return 0;
}
