// Shared infrastructure for the figure-reproduction benches: aligned table
// printing (the "rows/series" the paper's figures plot), sampled error
// evaluation against direct summation, and env-var scaling knobs so the same
// binaries run as quick smoke tests or long paper-scale sweeps.
//
// Scaling knobs (see DESIGN.md §1): problem sizes default to ~1/50 of the
// paper's (this machine has one CPU core and no GPU); modeled times project
// onto the paper's hardware from real operation/byte counts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/kernels.hpp"
#include "util/workloads.hpp"

namespace bltc::bench {

/// Relative 2-norm error of `phi` against sampled direct summation
/// (the paper samples the reference for large systems, Eq. 16).
double sampled_error(const Cloud& cloud, const std::vector<double>& phi,
                     const KernelSpec& kernel, std::size_t nsamples = 1000);

/// Same, with distinct target/source clouds.
double sampled_error2(const Cloud& targets, const Cloud& sources,
                      const std::vector<double>& phi, const KernelSpec& kernel,
                      std::size_t nsamples = 1000);

/// Minimal aligned-column table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print() const;

  static std::string num(double v, int precision = 3);
  static std::string sci(double v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print the standard bench banner: what paper artifact this reproduces and
/// which env knobs rescale it.
void banner(const std::string& title, const std::string& knobs);

/// Machine-readable bench output so the perf trajectory can be tracked
/// across PRs: a flat list of named metrics written as one JSON object,
///   {"bench": "...", "metrics": {"name": value, ...}, "meta": {...}}.
/// Numeric metrics keep full double precision; `meta` holds free-form
/// strings (units, configuration notes).
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name);

  void metric(const std::string& name, double value);
  void note(const std::string& name, const std::string& value);

  /// Write the report to `path`; returns false (with a perror-style message
  /// on stderr) when the file cannot be written.
  bool write(const std::string& path) const;

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::string>> notes_;
};

/// Parse `--json PATH` from argv; `fallback` when the flag is absent (the
/// benches default to their tracked BENCH_*.json name). An empty string
/// disables the report ("--json -" also disables it).
std::string json_output_path(int argc, char** argv,
                             const std::string& fallback);

}  // namespace bltc::bench
