// Shared infrastructure for the figure-reproduction benches: aligned table
// printing (the "rows/series" the paper's figures plot), sampled error
// evaluation against direct summation, and env-var scaling knobs so the same
// binaries run as quick smoke tests or long paper-scale sweeps.
//
// Scaling knobs (see DESIGN.md §1): problem sizes default to ~1/50 of the
// paper's (this machine has one CPU core and no GPU); modeled times project
// onto the paper's hardware from real operation/byte counts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/kernels.hpp"
#include "util/workloads.hpp"

namespace bltc::bench {

/// Relative 2-norm error of `phi` against sampled direct summation
/// (the paper samples the reference for large systems, Eq. 16).
double sampled_error(const Cloud& cloud, const std::vector<double>& phi,
                     const KernelSpec& kernel, std::size_t nsamples = 1000);

/// Same, with distinct target/source clouds.
double sampled_error2(const Cloud& targets, const Cloud& sources,
                      const std::vector<double>& phi, const KernelSpec& kernel,
                      std::size_t nsamples = 1000);

/// Minimal aligned-column table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print() const;

  static std::string num(double v, int precision = 3);
  static std::string sci(double v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print the standard bench banner: what paper artifact this reproduces and
/// which env knobs rescale it.
void banner(const std::string& title, const std::string& knobs);

}  // namespace bltc::bench
