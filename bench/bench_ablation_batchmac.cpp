// §3.2 ablation: the MAC is applied to the whole target batch rather than
// per target. Per-target acceptance is optimal per particle (less direct
// work) but diverges on a GPU; batch-level acceptance is slightly more
// conservative (more accurate, a bit more work) and divergence-free.
// This bench quantifies both sides of that trade.
#include <cstdio>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

using namespace bltc;

int main() {
  bench::banner(
      "§3.2 ablation — batch-level vs per-target MAC",
      "BLTC_BATCHMAC_N (default 20000)");

  const std::size_t n = env_size("BLTC_BATCHMAC_N", 20000);
  const Cloud cloud = uniform_cube(n, 31415);
  const KernelSpec kernel = KernelSpec::coulomb();

  // `lists` counts interaction lists executed (batches in batch mode,
  // target particles in per-target mode) and the interaction columns count
  // list-cluster pairs at that granularity; the per-interaction averages
  // below are the comparable quantities across the two modes.
  bench::Table table({"mac", "theta", "error", "lists", "approx_int/list",
                      "direct_evals/target", "approx_evals/target",
                      "host_compute[s]"});

  for (const double theta : {0.6, 0.8}) {
    for (const bool per_target : {false, true}) {
      SolverConfig config;
      config.kernel = kernel;
      config.params.theta = theta;
      config.params.degree = 6;
      config.params.max_leaf = 1000;
      config.params.max_batch = 1000;
      config.params.per_target_mac = per_target;
      Solver solver(config);
      solver.set_sources(cloud);

      RunStats stats;
      const auto phi = solver.evaluate(cloud, &stats);
      const double err = bench::sampled_error(cloud, phi, kernel, 500);

      table.add_row(
          {stats.per_target_mac ? "per-target" : "batch",
           bench::Table::num(theta, 1), bench::Table::sci(err),
           std::to_string(stats.num_batches),
           bench::Table::num(static_cast<double>(stats.approx_interactions) /
                                 static_cast<double>(stats.num_batches),
                             1),
           bench::Table::num(stats.direct_evals / static_cast<double>(n), 0),
           bench::Table::num(stats.approx_evals / static_cast<double>(n), 0),
           bench::Table::num(stats.compute_seconds, 3)});
    }
  }
  table.print();
  std::printf(
      "\nShape check vs paper: per-target MAC does less direct work per "
      "target (it is per-particle\noptimal) at slightly larger error; "
      "batch-level MAC trades that work for uniform control flow,\nwhich is "
      "what makes the GPU kernels divergence-free (§3.2).\n");
  return 0;
}
