// Incremental dynamics bench: what does a position update cost once the
// plan is slack-fattened? Two workloads bracket the design space:
//
//   * leapfrog — every particle drifts a little each step (MD). The
//     incremental path keeps the tree, batches, and interaction lists and
//     rebuilds only dirty-cluster moments; with every leaf dirty the win is
//     skipping all structural work, and the headline ratio is replan time
//     as a fraction of evaluate time.
//   * sparse-move — a small fraction of particles moves per step (local
//     relaxation / accepted Monte-Carlo moves). This is the amortized-
//     O(moved) showcase: moved, dirty clusters, rebuilt moments, and GpuSim
//     restage bytes all scale with the moving subset, not with N.
//
// Both compare against position_slack = 0, which is the exact-parity
// contract: update_positions degenerates to set_sources (full re-plan) and
// results are bit-identical to a fresh solver. Results are written to
// BENCH_dynamics.json (override with --json) for cross-PR tracking.
//
// BLTC_DYN_N / BLTC_DYN_STEPS / BLTC_DYN_SLACK rescale the run.
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

using namespace bltc;

namespace {

TreecodeParams dyn_params(double slack) {
  TreecodeParams p;
  p.theta = 0.7;
  p.degree = 8;
  p.max_leaf = 2000;
  p.max_batch = 2000;
  p.position_slack = slack;
  return p;
}

SolverConfig dyn_config(double slack, Backend backend) {
  SolverConfig config;
  config.kernel = KernelSpec::coulomb();
  config.params = dyn_params(slack);
  config.backend = backend;
  return config;
}

/// Drift every particle by a uniform step of at most `scale` per axis.
void drift_all(Cloud& cloud, double scale, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    cloud.x[i] += scale * (2.0 * rng.next_double() - 1.0);
    cloud.y[i] += scale * (2.0 * rng.next_double() - 1.0);
    cloud.z[i] += scale * (2.0 * rng.next_double() - 1.0);
  }
}

/// The `count` particles nearest to a probe point: a spatially localized
/// patch, the shape of a local relaxation or an accepted Monte-Carlo
/// cluster move. Locality is the point — the moving subset occupies a few
/// leaves, so dirty clusters (and restaged bytes) scale with the patch,
/// not with N.
std::vector<std::size_t> nearest_patch(const Cloud& cloud, std::size_t count,
                                       double px, double py, double pz) {
  std::vector<std::size_t> idx(cloud.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  const auto dist2 = [&](std::size_t i) {
    const double dx = cloud.x[i] - px;
    const double dy = cloud.y[i] - py;
    const double dz = cloud.z[i] - pz;
    return dx * dx + dy * dy + dz * dz;
  };
  std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(count),
                   idx.end(),
                   [&](std::size_t a, std::size_t b) { return dist2(a) < dist2(b); });
  idx.resize(count);
  return idx;
}

/// Move the patch members by a uniform step of at most `scale`.
void drift_patch(Cloud& cloud, const std::vector<std::size_t>& patch,
                 double scale, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (const std::size_t j : patch) {
    cloud.x[j] += scale * (2.0 * rng.next_double() - 1.0);
    cloud.y[j] += scale * (2.0 * rng.next_double() - 1.0);
    cloud.z[j] += scale * (2.0 * rng.next_double() - 1.0);
  }
}

struct StepCost {
  double replan = 0.0;    ///< setup + precompute attributed to the update
  double evaluate = 0.0;  ///< compute phase
  RunStats stats;
};

StepCost step(Solver& solver, const Cloud& cloud) {
  solver.update_positions(cloud);
  StepCost cost;
  solver.evaluate(cloud, &cost.stats);
  cost.replan = cost.stats.setup_seconds + cost.stats.precompute_seconds;
  cost.evaluate = cost.stats.compute_seconds;
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Incremental dynamics — slack-fattened update_positions vs full "
      "re-plan",
      "BLTC_DYN_N (default 200000), BLTC_DYN_STEPS (default 4), "
      "BLTC_DYN_SLACK (default 0.1)");

  const std::size_t n = env_size("BLTC_DYN_N", 200000);
  const int steps = static_cast<int>(env_size("BLTC_DYN_STEPS", 4));
  const double slack = env_double("BLTC_DYN_SLACK", 0.1);
  const Cloud start = uniform_cube(n, 777);

  bench::JsonReport report("bench_dynamics");
  report.note("n", std::to_string(n));
  report.note("steps", std::to_string(steps));
  report.note("slack", bench::Table::num(slack, 3));

  // ---- Exact-parity contract: slack = 0 must be bit-identical to a fresh
  // plan of the moved cloud.
  {
    Cloud moved = start;
    drift_all(moved, 1e-4, 1);
    Solver a(dyn_config(0.0, Backend::kCpu));
    a.set_sources(start);
    (void)a.evaluate(start);
    a.update_positions(moved);
    Solver b(dyn_config(0.0, Backend::kCpu));
    b.set_sources(moved);
    const bool identical = a.evaluate(moved) == b.evaluate(moved);
    std::printf("slack = 0 parity: update_positions %s set_sources\n",
                identical ? "bit-identical to" : "DIFFERS FROM");
    report.note("slack0_bit_identical", identical ? "true" : "false");
  }

  // ---- Leapfrog: every particle drifts every step --------------------------
  {
    std::printf("\n--- leapfrog (all %zu particles drift each step, cpu) "
                "---\n", n);
    bench::Table table({"variant", "step", "replan[s]", "evaluate[s]",
                        "moved", "dirty", "rebucketed", "lists_reused"});
    double full_replan = 0.0, incr_replan = 0.0, incr_eval = 0.0;
    RunStats last{};
    for (const double s : {0.0, slack}) {
      Solver solver(dyn_config(s, Backend::kCpu));
      Cloud cloud = start;
      solver.set_sources(cloud);
      (void)solver.evaluate(cloud);
      for (int c = 1; c <= steps; ++c) {
        drift_all(cloud, 1e-4, static_cast<std::uint64_t>(10 + c));
        const StepCost cost = step(solver, cloud);
        table.add_row({s == 0.0 ? "full-replan" : "incremental",
                       std::to_string(c), bench::Table::num(cost.replan, 4),
                       bench::Table::num(cost.evaluate, 4),
                       std::to_string(cost.stats.moved_particles),
                       std::to_string(cost.stats.dirty_clusters),
                       std::to_string(cost.stats.rebucketed_particles),
                       std::to_string(cost.stats.lists_reused)});
        if (s == 0.0) {
          full_replan += cost.replan;
        } else {
          incr_replan += cost.replan;
          incr_eval += cost.evaluate;
          last = cost.stats;
        }
      }
    }
    table.print();
    const double speedup = full_replan / incr_replan;
    const double frac = incr_replan / incr_eval;
    std::printf("leapfrog replan: full %.4f s, incremental %.4f s "
                "(%.1fx); incremental replan = %.1f%% of evaluate\n",
                full_replan / steps, incr_replan / steps, speedup,
                100.0 * frac);
    report.metric("leapfrog_full_replan_seconds", full_replan / steps);
    report.metric("leapfrog_incremental_replan_seconds", incr_replan / steps);
    report.metric("leapfrog_replan_speedup", speedup);
    report.metric("leapfrog_replan_over_evaluate", frac);
    report.metric("leapfrog_lists_reused",
                  static_cast<double>(last.lists_reused));
  }

  // ---- Sparse moves: amortized-O(moved) ------------------------------------
  {
    const std::size_t moving = n / 100 > 0 ? n / 100 : 1;
    const std::vector<std::size_t> patch =
        nearest_patch(start, moving, 0.25, 0.25, 0.25);
    std::printf("\n--- sparse-move (a patch of %zu of %zu particles moves "
                "each step, cpu) ---\n", moving, n);
    bench::Table table({"variant", "step", "replan[s]", "evaluate[s]",
                        "moved", "dirty", "rebucketed", "lists_reused"});
    double full_replan = 0.0, incr_replan = 0.0;
    RunStats last{};
    for (const double s : {0.0, slack}) {
      Solver solver(dyn_config(s, Backend::kCpu));
      Cloud cloud = start;
      solver.set_sources(cloud);
      (void)solver.evaluate(cloud);
      for (int c = 1; c <= steps; ++c) {
        drift_patch(cloud, patch, 1e-4, static_cast<std::uint64_t>(20 + c));
        const StepCost cost = step(solver, cloud);
        table.add_row({s == 0.0 ? "full-replan" : "incremental",
                       std::to_string(c), bench::Table::num(cost.replan, 4),
                       bench::Table::num(cost.evaluate, 4),
                       std::to_string(cost.stats.moved_particles),
                       std::to_string(cost.stats.dirty_clusters),
                       std::to_string(cost.stats.rebucketed_particles),
                       std::to_string(cost.stats.lists_reused)});
        if (s == 0.0) {
          full_replan += cost.replan;
        } else {
          incr_replan += cost.replan;
          last = cost.stats;
        }
      }
    }
    table.print();
    const double speedup = full_replan / incr_replan;
    std::printf("sparse-move replan: full %.4f s, incremental %.4f s "
                "(%.1fx), %zu moved -> %zu dirty clusters of %zu\n",
                full_replan / steps, incr_replan / steps, speedup,
                last.moved_particles, last.dirty_clusters,
                last.num_clusters);
    report.metric("sparse_full_replan_seconds", full_replan / steps);
    report.metric("sparse_incremental_replan_seconds", incr_replan / steps);
    report.metric("sparse_replan_speedup", speedup);
    report.metric("sparse_moved_particles",
                  static_cast<double>(last.moved_particles));
    report.metric("sparse_dirty_clusters",
                  static_cast<double>(last.dirty_clusters));
    report.metric("sparse_num_clusters",
                  static_cast<double>(last.num_clusters));
    report.metric("sparse_lists_reused",
                  static_cast<double>(last.lists_reused));
  }

  // ---- GpuSim: restage traffic proportional to the moved subset ------------
  {
    const std::size_t moving = n / 100 > 0 ? n / 100 : 1;
    const std::vector<std::size_t> patch =
        nearest_patch(start, moving, 0.25, 0.25, 0.25);
    std::printf("\n--- gpusim restage (a patch of %zu of %zu particles "
                "moves) ---\n", moving, n);
    Solver solver(dyn_config(slack, Backend::kGpuSim));
    Cloud cloud = start;
    solver.set_sources(cloud);
    RunStats stats;
    (void)solver.evaluate(cloud, &stats);
    const std::size_t full_bytes = stats.bytes_to_device;

    drift_patch(cloud, patch, 1e-4, 31);
    solver.update_positions(cloud);
    (void)solver.evaluate(cloud, &stats);
    const std::size_t delta_bytes = stats.bytes_to_device;
    std::printf("full stage %.1f KiB -> incremental restage %.1f KiB "
                "(%.1f%%), incremental=%s\n",
                static_cast<double>(full_bytes) / 1024.0,
                static_cast<double>(delta_bytes) / 1024.0,
                100.0 * static_cast<double>(delta_bytes) /
                    static_cast<double>(full_bytes),
                stats.incremental_update ? "yes" : "no");
    report.metric("gpusim_full_stage_bytes",
                  static_cast<double>(full_bytes));
    report.metric("gpusim_incremental_restage_bytes",
                  static_cast<double>(delta_bytes));
    report.metric("gpusim_restage_fraction",
                  static_cast<double>(delta_bytes) /
                      static_cast<double>(full_bytes));
  }

  const std::string json_path =
      bench::json_output_path(argc, argv, "BENCH_dynamics.json");
  if (!json_path.empty()) report.write(json_path);
  return 0;
}
