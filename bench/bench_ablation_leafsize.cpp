// §3.2 ablation: "for large enough batch and leaf cluster sizes (N_B, N_L ~
// 2000 for the GPUs used in this work), this compute kernel structure
// achieves high GPU occupancy". This bench sweeps N_B = N_L and reports the
// modeled GPU compute time: small leaves are launch-overhead/occupancy
// bound, large leaves do too much direct work.
#include <cstdio>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "util/env.hpp"

using namespace bltc;

int main() {
  bench::banner(
      "§3.2 ablation — batch/leaf size sweep (paper sweet spot: N_B = N_L ~ "
      "2000)",
      "BLTC_LEAF_N (default 40000)");

  const std::size_t n = env_size("BLTC_LEAF_N", 40000);
  const Cloud cloud = uniform_cube(n, 1234);
  const KernelSpec kernel = KernelSpec::coulomb();

  bench::Table table({"N_B=N_L", "error", "gpu_compute[s]", "gpu_total[s]",
                      "launches", "direct_evals", "approx_evals"});

  for (const std::size_t leaf : {250u, 500u, 1000u, 2000u, 4000u, 8000u}) {
    TreecodeParams params;
    params.theta = 0.8;
    params.degree = 8;
    params.max_leaf = leaf;
    params.max_batch = leaf;

    SolverConfig config;
    config.kernel = kernel;
    config.params = params;
    config.backend = Backend::kGpuSim;
    Solver solver(config);
    solver.set_sources(cloud);
    RunStats stats;
    const auto phi = solver.evaluate(cloud, &stats);
    const double err = bench::sampled_error(cloud, phi, kernel, 500);

    table.add_row({std::to_string(leaf), bench::Table::sci(err),
                   bench::Table::num(stats.modeled.compute, 4),
                   bench::Table::num(stats.modeled.total(), 4),
                   std::to_string(stats.gpu_launches),
                   bench::Table::sci(stats.direct_evals),
                   bench::Table::sci(stats.approx_evals)});
  }
  table.print();
  std::printf(
      "\nShape check vs paper: compute time is minimized in the ~1000-4000 "
      "range; tiny leaves pay\nper-launch overhead and low occupancy, huge "
      "leaves inflate direct work (and the MAC accepts less).\n");
  return 0;
}
