// §4 conclusion (4): "while the GPU direct sum is faster than the CPU
// treecode for this problem size, this will not be the case for large
// enough problems due to the O(N^2) scaling of direct summation."
// This bench sweeps N and reports the three modeled curves — GPU direct
// sum, GPU treecode, 6-core CPU treecode — so the crossovers are visible.
//
// It also runs the BLDTT section: batched particle-cluster (PC) vs the
// dual traversal (TraversalMode::kDual) at N = BLTC_BLDTT_N, theta = 0.7,
// degree = 8, default leaf sizes, on the sphere-surface (BEM quadrature)
// and uniform-cube workloads, reporting total kernel evaluations, launch
// counts, wall clock, and the sampled relative error of each against the
// direct-sum oracle. Results go to BENCH_bldtt.json.
//
// The periodic section (N = BLTC_PERIODIC_N, Yukawa screened plasma)
// compares open boundaries against periodic runs at 0/1/2 image shells:
// kernel-evaluation growth vs the (2k+1)^3 image count, steady-state wall
// time, the sampled error against the matching-image-set periodic oracle
// (parity: stays at the open tolerance), and the error against a
// deep-shell reference (the shell-convergence ladder the README tabulates).
// Results go to BENCH_periodic.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/direct_sum.hpp"
#include "core/gpu_engine.hpp"
#include "core/periodic.hpp"
#include "core/solver.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace bltc;

namespace {

/// One PC-vs-dual comparison; returns metrics through the report with the
/// given key prefix ("" for the headline workload).
void bldtt_compare(const std::string& label, const std::string& prefix,
                   const Cloud& cloud, bench::Table& table,
                   bench::JsonReport& report) {
  const KernelSpec kernel = KernelSpec::coulomb();
  TreecodeParams params;
  params.theta = 0.7;
  params.degree = 8;

  const auto run = [&](TraversalMode mode, RunStats& stats) {
    SolverConfig config;
    config.kernel = kernel;
    config.params = params;
    config.params.traversal = mode;
    Solver solver(config);
    solver.set_sources(cloud);
    // First evaluation builds and caches the target plan; the timed repeat
    // is the steady-state compute phase both modes are compared on.
    std::vector<double> phi = solver.evaluate(cloud);
    WallTimer timer;
    phi = solver.evaluate(cloud, &stats);
    const double seconds = timer.seconds();
    const double err = bench::sampled_error(cloud, phi, kernel, 500);
    return std::pair<double, double>{seconds, err};
  };

  RunStats pc, dual;
  const auto [pc_seconds, pc_err] = run(TraversalMode::kBatched, pc);
  const auto [dual_seconds, dual_err] = run(TraversalMode::kDual, dual);

  table.add_row({label, "PC", bench::Table::sci(pc.total_evals()),
                 std::to_string(pc.approx_launches + pc.direct_launches),
                 bench::Table::num(pc_seconds, 3), bench::Table::sci(pc_err)});
  table.add_row(
      {label, "dual", bench::Table::sci(dual.total_evals()),
       std::to_string(dual.approx_launches + dual.direct_launches +
                      dual.cp_launches + dual.cc_launches),
       bench::Table::num(dual_seconds, 3), bench::Table::sci(dual_err)});

  report.metric(prefix + "pc_total_evals", pc.total_evals());
  report.metric(prefix + "dual_total_evals", dual.total_evals());
  report.metric(prefix + "evals_ratio",
                pc.total_evals() / dual.total_evals());
  report.metric(prefix + "pc_rel_err", pc_err);
  report.metric(prefix + "dual_rel_err", dual_err);
  report.metric(prefix + "pc_seconds", pc_seconds);
  report.metric(prefix + "dual_seconds", dual_seconds);
  report.metric(prefix + "dual_cc_evals", dual.cc_evals);
  report.metric(prefix + "dual_cp_evals", dual.cp_evals);
  report.metric(prefix + "dual_pc_evals", dual.approx_evals);
  report.metric(prefix + "dual_direct_evals", dual.direct_evals);
  report.metric(prefix + "dual_cc_interactions",
                static_cast<double>(dual.cc_interactions));
  report.metric(prefix + "dual_cp_interactions",
                static_cast<double>(dual.cp_interactions));
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "§4 crossover — direct sum vs treecode scaling (Coulomb, theta=0.8, "
      "n=8)",
      "BLTC_CROSS_NMAX (default 160000), BLTC_CROSS_BATCH (default 2000)");

  const std::size_t n_max = env_size("BLTC_CROSS_NMAX", 160000);
  const std::size_t batch = env_size("BLTC_CROSS_BATCH", 2000);
  const KernelSpec kernel = KernelSpec::coulomb();
  const gpusim::DeviceSpec gpu = gpusim::DeviceSpec::titan_v();
  const gpusim::DeviceSpec cpu = gpusim::DeviceSpec::xeon_x5650_6core();

  bench::Table table({"N", "direct_gpu[s]", "treecode_gpu[s]",
                      "treecode_cpu6[s]", "error", "winner_gpu"});

  for (std::size_t n = 10000; n <= n_max; n *= 2) {
    const Cloud cloud = uniform_cube(n, 999);
    TreecodeParams params;
    params.theta = 0.8;
    params.degree = 8;
    params.max_leaf = batch;
    params.max_batch = batch;

    SolverConfig config;
    config.kernel = kernel;
    config.params = params;
    config.backend = Backend::kGpuSim;
    Solver solver(config);
    solver.set_sources(cloud);
    RunStats stats;
    const auto phi = solver.evaluate(cloud, &stats);
    const double err = bench::sampled_error(cloud, phi, kernel, 500);

    const double pairs = static_cast<double>(n) * static_cast<double>(n);
    const double t_direct_gpu = pairs / gpu.evals_per_sec;
    const double t_tree_gpu = stats.modeled.total();
    const double t_tree_cpu =
        (stats.approx_evals + stats.direct_evals) / cpu.evals_per_sec;

    table.add_row({std::to_string(n), bench::Table::num(t_direct_gpu, 4),
                   bench::Table::num(t_tree_gpu, 4),
                   bench::Table::num(t_tree_cpu, 3), bench::Table::sci(err),
                   t_tree_gpu < t_direct_gpu ? "treecode" : "direct"});
  }
  table.print();
  std::printf(
      "\nShape checks vs paper: direct_gpu grows ~4x per doubling (O(N^2)); "
      "treecode columns grow\n~2x per doubling (O(N log N)); the GPU "
      "treecode overtakes the GPU direct sum as N grows,\nwhile the GPU "
      "direct sum stays ahead of the 6-core CPU treecode at small N.\n");

  // ---- BLDTT: dual traversal vs batched PC --------------------------------
  std::printf(
      "\nBLDTT section — dual traversal vs batched PC "
      "(theta=0.7, n=8, default leaf sizes, CPU engine)\n");
  const std::size_t bldtt_n = env_size("BLTC_BLDTT_N", 100000);
  bench::Table bldtt_table(
      {"workload", "mode", "kernel_evals", "launches", "wall[s]", "rel_err"});
  bench::JsonReport report("bench_crossover_bldtt");
  report.note("n", std::to_string(bldtt_n));
  report.note("theta", "0.7");
  report.note("degree", "8");
  report.note("headline_workload", "sphere_surface (BEM quadrature)");

  // Headline: the sphere-surface (BEM quadrature) workload, where the far
  // field dominates and the cluster-cluster collapse shows its full effect.
  const std::string size_label = std::to_string(bldtt_n / 1000) + "k";
  bldtt_compare("sphere_" + size_label, "", sphere_surface(bldtt_n, 42),
                bldtt_table, report);
  // The paper's uniform-cube distribution rides along for reference.
  bldtt_compare("uniform_" + size_label, "uniform_", uniform_cube(bldtt_n, 42),
                bldtt_table, report);
  // Scaling trend: the PC/dual evaluation-count gap widens with N. The
  // floor keeps tiny BLTC_BLDTT_N values from spinning (n = 0 would never
  // grow) and keeps the "<size>k" metric labels distinct.
  for (std::size_t n = std::max<std::size_t>(1000, bldtt_n / 4);
       n < bldtt_n; n *= 2) {
    bldtt_compare("sphere_" + std::to_string(n / 1000) + "k",
                  "sphere_" + std::to_string(n / 1000) + "k_",
                  sphere_surface(n, 42), bldtt_table, report);
  }
  bldtt_table.print();

  const std::string json_path =
      bench::json_output_path(argc, argv, "BENCH_bldtt.json");
  if (!json_path.empty()) report.write(json_path);

  // ---- Periodic boundaries: image-shifted traversals vs open --------------
  std::printf(
      "\nPeriodic section — open vs image shells (Yukawa screened plasma, "
      "kappa=4, box [0,1)^3,\ntheta=0.8, n=8, CPU engine). One source plan "
      "serves every image shell.\n");
  const std::size_t pn = env_size("BLTC_PERIODIC_N", 40000);
  const KernelSpec pkernel = KernelSpec::yukawa(4.0);
  const Box3 domain = Box3::cube(0.0, 1.0);
  const Cloud plasma = screened_plasma(pn, 7);
  const auto psample = sample_indices(pn, 300);
  // Deep-shell reference: at kappa=4 the image sum truncation decays like
  // exp(-4k), so 4 shells is converged far below the treecode tolerance.
  const auto converged = direct_sum_periodic_sampled(plasma, psample, plasma,
                                                     pkernel, domain, 4);

  bench::Table ptable({"boundary", "shells", "kernel_evals", "evals_ratio",
                       "wall[s]", "err_vs_imageset", "err_vs_converged"});
  bench::JsonReport preport("bench_crossover_periodic");
  preport.note("n", std::to_string(pn));
  preport.note("kernel", "yukawa kappa=4");
  preport.note("theta", "0.8");
  preport.note("degree", "8");
  preport.note("workload", "screened_plasma, box [0,1)^3");
  preport.note("reference", "periodic direct sum at 4 shells");

  double open_evals = 0.0;
  for (int shells = -1; shells <= 2; ++shells) {
    TreecodeParams params;
    params.theta = 0.8;
    params.degree = 8;
    if (shells >= 0) {
      params.boundary = BoundaryConditions::kPeriodic;
      params.domain = domain;
      params.image_shells = shells;
    }
    SolverConfig config;
    config.kernel = pkernel;
    config.params = params;
    Solver solver(config);
    solver.set_sources(plasma);
    RunStats stats;
    std::vector<double> phi = solver.evaluate(plasma);  // plan + cache
    WallTimer timer;
    phi = solver.evaluate(plasma, &stats);  // steady-state repeat
    const double seconds = timer.seconds();
    if (shells < 0) open_evals = stats.total_evals();

    std::vector<double> phi_sampled(psample.size());
    for (std::size_t s = 0; s < psample.size(); ++s) {
      phi_sampled[s] = phi[psample[s]];
    }
    // Parity against the identical image set (open: the plain oracle).
    const auto own = shells < 0
                         ? direct_sum_sampled(plasma, psample, plasma, pkernel)
                         : direct_sum_periodic_sampled(plasma, psample, plasma,
                                                       pkernel, domain,
                                                       shells);
    const double err_own = relative_l2_error(own, phi_sampled);
    const double err_conv = relative_l2_error(converged, phi_sampled);

    const std::string label = shells < 0 ? "open" : "periodic";
    const std::string key =
        shells < 0 ? "open_" : "shells" + std::to_string(shells) + "_";
    ptable.add_row({label, shells < 0 ? "-" : std::to_string(shells),
                    bench::Table::sci(stats.total_evals()),
                    bench::Table::num(stats.total_evals() / open_evals, 2),
                    bench::Table::num(seconds, 3), bench::Table::sci(err_own),
                    bench::Table::sci(err_conv)});
    preport.metric(key + "total_evals", stats.total_evals());
    preport.metric(key + "seconds", seconds);
    preport.metric(key + "err_vs_imageset", err_own);
    preport.metric(key + "err_vs_converged", err_conv);
  }
  ptable.print();
  std::printf(
      "\nShape checks: kernel evals grow far slower than the (2k+1)^3 image "
      "count (far images are\nabsorbed high in the shifted trees); "
      "err_vs_imageset stays at the open tolerance (parity);\n"
      "err_vs_converged falls ~exp(-kappa k L) until it hits the treecode "
      "floor (shell convergence).\n");
  preport.write("BENCH_periodic.json");
  return 0;
}
