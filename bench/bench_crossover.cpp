// §4 conclusion (4): "while the GPU direct sum is faster than the CPU
// treecode for this problem size, this will not be the case for large
// enough problems due to the O(N^2) scaling of direct summation."
// This bench sweeps N and reports the three modeled curves — GPU direct
// sum, GPU treecode, 6-core CPU treecode — so the crossovers are visible.
#include <cstdio>

#include "bench_common.hpp"
#include "core/gpu_engine.hpp"
#include "core/solver.hpp"
#include "util/env.hpp"

using namespace bltc;

int main() {
  bench::banner(
      "§4 crossover — direct sum vs treecode scaling (Coulomb, theta=0.8, "
      "n=8)",
      "BLTC_CROSS_NMAX (default 160000), BLTC_CROSS_BATCH (default 2000)");

  const std::size_t n_max = env_size("BLTC_CROSS_NMAX", 160000);
  const std::size_t batch = env_size("BLTC_CROSS_BATCH", 2000);
  const KernelSpec kernel = KernelSpec::coulomb();
  const gpusim::DeviceSpec gpu = gpusim::DeviceSpec::titan_v();
  const gpusim::DeviceSpec cpu = gpusim::DeviceSpec::xeon_x5650_6core();

  bench::Table table({"N", "direct_gpu[s]", "treecode_gpu[s]",
                      "treecode_cpu6[s]", "error", "winner_gpu"});

  for (std::size_t n = 10000; n <= n_max; n *= 2) {
    const Cloud cloud = uniform_cube(n, 999);
    TreecodeParams params;
    params.theta = 0.8;
    params.degree = 8;
    params.max_leaf = batch;
    params.max_batch = batch;

    SolverConfig config;
    config.kernel = kernel;
    config.params = params;
    config.backend = Backend::kGpuSim;
    Solver solver(config);
    solver.set_sources(cloud);
    RunStats stats;
    const auto phi = solver.evaluate(cloud, &stats);
    const double err = bench::sampled_error(cloud, phi, kernel, 500);

    const double pairs = static_cast<double>(n) * static_cast<double>(n);
    const double t_direct_gpu = pairs / gpu.evals_per_sec;
    const double t_tree_gpu = stats.modeled.total();
    const double t_tree_cpu =
        (stats.approx_evals + stats.direct_evals) / cpu.evals_per_sec;

    table.add_row({std::to_string(n), bench::Table::num(t_direct_gpu, 4),
                   bench::Table::num(t_tree_gpu, 4),
                   bench::Table::num(t_tree_cpu, 3), bench::Table::sci(err),
                   t_tree_gpu < t_direct_gpu ? "treecode" : "direct"});
  }
  table.print();
  std::printf(
      "\nShape checks vs paper: direct_gpu grows ~4x per doubling (O(N^2)); "
      "treecode columns grow\n~2x per doubling (O(N log N)); the GPU "
      "treecode overtakes the GPU direct sum as N grows,\nwhile the GPU "
      "direct sum stays ahead of the 6-core CPU treecode at small N.\n");
  return 0;
}
