// §5 future-work ablation: mixed-precision arithmetic. Runs the same solve
// with double and float device kernels and reports the accuracy/time trade
// (Titan V FP32:FP64 throughput ratio is 2:1 in the model).
#include <cstdio>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "util/env.hpp"

using namespace bltc;

int main() {
  bench::banner(
      "§5 ablation — mixed-precision potential kernels",
      "BLTC_PREC_N (default 15000)");

  const std::size_t n = env_size("BLTC_PREC_N", 15000);
  const Cloud cloud = uniform_cube(n, 2718);

  bench::Table table({"kernel", "precision", "error", "gpu_compute[s]",
                      "gpu_total[s]"});

  for (const KernelSpec kernel :
       {KernelSpec::coulomb(), KernelSpec::yukawa(0.5)}) {
    for (const bool mixed : {false, true}) {
      TreecodeParams params;
      params.theta = 0.7;
      params.degree = 8;
      params.max_leaf = 2000;
      params.max_batch = 2000;

      SolverConfig config;
      config.kernel = kernel;
      config.params = params;
      config.backend = Backend::kGpuSim;
      config.gpu.mixed_precision = mixed;
      Solver solver(config);
      solver.set_sources(cloud);
      RunStats stats;
      const auto phi = solver.evaluate(cloud, &stats);
      const double err = bench::sampled_error(cloud, phi, kernel, 500);

      table.add_row({kernel.name(), mixed ? "float" : "double",
                     bench::Table::sci(err),
                     bench::Table::num(stats.modeled.compute, 4),
                     bench::Table::num(stats.modeled.total(), 4)});
    }
  }
  table.print();
  std::printf(
      "\nExpected shape: float rows halve the modeled compute time and "
      "settle at ~1e-6..1e-7\nrelative error (single-precision accumulation "
      "floor) instead of the double path's ~1e-8.\n");
  return 0;
}
