// Serving-layer bench: a seeded multi-tenant request storm (mixed open /
// periodic / dual-traversal requests over shared and unique clouds) driven
// through the PlanCache + batching ServeFrontend by closed-loop clients.
// Reports per-request latency percentiles and throughput at 1, 4, and 16
// concurrent clients, plus a cache-hit storm that must show *zero* tree
// builds and *zero* moment builds after warmup — the amortization claim of
// the serving layer, measured with the same structural counters the tests
// assert on. Results go to BENCH_serving.json (override with --json).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/moments.hpp"
#include "core/tree.hpp"
#include "serve/frontend.hpp"
#include "serve/plan_cache.hpp"
#include "serve/storm.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

using namespace bltc;

namespace {

struct StormRun {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double throughput = 0.0;  ///< requests per second
  double wall_seconds = 0.0;
  std::size_t ok = 0;
  std::size_t shed = 0;
  std::size_t expired = 0;  ///< resolved with DeadlineExceeded
  serve::CacheStats cache;
  serve::FrontendStats frontend;
};

/// Drive every storm request through a fresh cache + frontend with
/// `clients` closed-loop client threads. Latency is submit-to-resolution —
/// under overload a shed or expired request resolving fast is the *point*
/// of the hardening, so errors count in the percentiles too. `warmup`
/// pre-builds every plan so the measured burst isolates serving behavior.
StormRun run_storm(const RequestStorm& storm,
                   const serve::StormParams& presets, std::size_t clients,
                   const serve::ServeOptions& options,
                   double deadline_ms = 0.0, bool warmup = false) {
  serve::PlanCache cache;
  serve::ServeFrontend frontend(cache, options);
  if (warmup) {
    for (const StormRequest& req : storm.requests) {
      frontend.evaluate_now(serve::storm_request(storm, req, presets));
    }
  }

  std::vector<double> latency(storm.requests.size(), 0.0);
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> ok{0}, shed{0}, expired{0};
  WallTimer wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (;;) {
          const std::size_t i = cursor.fetch_add(1);
          if (i >= storm.requests.size()) return;
          serve::ServeRequest request =
              serve::storm_request(storm, storm.requests[i], presets);
          request.deadline_ms = deadline_ms;
          WallTimer timer;
          try {
            frontend.submit(request).get();
            ++ok;
          } catch (const serve::RequestShed&) {
            ++shed;
          } catch (const serve::DeadlineExceeded&) {
            ++expired;
          }
          latency[i] = timer.seconds();
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  StormRun run;
  run.wall_seconds = wall.seconds();
  std::sort(latency.begin(), latency.end());
  const auto pct = [&](double p) {
    const std::size_t idx = std::min(
        latency.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(latency.size())));
    return latency[idx] * 1e3;
  };
  run.p50_ms = pct(0.50);
  run.p99_ms = pct(0.99);
  run.throughput =
      static_cast<double>(storm.requests.size()) / run.wall_seconds;
  run.ok = ok.load();
  run.shed = shed.load();
  run.expired = expired.load();
  run.cache = cache.stats();
  run.frontend = frontend.stats();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Multi-tenant serving — request storms through PlanCache + frontend",
      "BLTC_SERVE_REQUESTS (default 48), BLTC_SERVE_SHARED_N (default "
      "2048), BLTC_SERVE_SMALL_N (default 256)");

  StormSpec spec;
  spec.num_requests = env_size("BLTC_SERVE_REQUESTS", 48);
  spec.num_shared = 3;
  spec.shared_size = env_size("BLTC_SERVE_SHARED_N", 2048);
  spec.small_size = env_size("BLTC_SERVE_SMALL_N", 256);
  const RequestStorm storm = request_storm(spec, 20260809);
  const serve::StormParams presets = serve::default_storm_params(storm.box);

  bench::JsonReport report("bench_serving");
  report.note("requests", std::to_string(storm.requests.size()));
  report.note("clouds", std::to_string(storm.clouds.size()));
  report.note("shared_size", std::to_string(spec.shared_size));
  report.note("small_size", std::to_string(spec.small_size));
  report.note("mix", "open+periodic+dual, yukawa for periodic");

  // ---- Mixed storm at 1 / 4 / 16 concurrent clients ----------------------
  bench::Table table({"clients", "p50 ms", "p99 ms", "req/s", "hits",
                      "misses", "engine calls", "fused", "max group"});
  for (const std::size_t clients : {std::size_t(1), std::size_t(4),
                                    std::size_t(16)}) {
    serve::ServeOptions mixed_options;
    mixed_options.max_batch = 16;
    mixed_options.max_delay_ms = 0.5;
    mixed_options.workers = 2;
    const StormRun run = run_storm(storm, presets, clients, mixed_options);
    table.add_row({std::to_string(clients), bench::Table::num(run.p50_ms),
                   bench::Table::num(run.p99_ms),
                   bench::Table::num(run.throughput, 1),
                   std::to_string(run.cache.hits),
                   std::to_string(run.cache.misses),
                   std::to_string(run.frontend.executions),
                   std::to_string(run.frontend.fused_requests),
                   std::to_string(run.frontend.max_group)});
    const std::string prefix = "clients" + std::to_string(clients) + "_";
    report.metric(prefix + "p50_ms", run.p50_ms);
    report.metric(prefix + "p99_ms", run.p99_ms);
    report.metric(prefix + "throughput_rps", run.throughput);
    report.metric(prefix + "wall_seconds", run.wall_seconds);
    report.metric(prefix + "cache_hits",
                  static_cast<double>(run.cache.hits));
    report.metric(prefix + "cache_misses",
                  static_cast<double>(run.cache.misses));
    report.metric(prefix + "engine_calls",
                  static_cast<double>(run.frontend.executions));
    report.metric(prefix + "fused_requests",
                  static_cast<double>(run.frontend.fused_requests));
  }
  table.print();

  // ---- Cache-hit storm: every request revisits a shared cloud ------------
  // After one warmup pass the cache holds every plan; the measured pass
  // must build zero trees and zero moments.
  StormSpec hit_spec = spec;
  hit_spec.shared_fraction = 1.0;
  hit_spec.translate_fraction = 0.0;
  const RequestStorm hit_storm = request_storm(hit_spec, 77);

  serve::PlanCache cache;
  serve::ServeOptions options;
  options.max_batch = 16;
  options.max_delay_ms = 0.5;
  options.workers = 2;
  serve::ServeFrontend frontend(cache, options);
  for (const StormRequest& req : hit_storm.requests) {  // warmup
    frontend.submit(serve::storm_request(hit_storm, req, presets)).get();
  }

  const std::size_t trees_before = ClusterTree::build_count();
  const std::size_t moments_before = ClusterMoments::build_count();
  std::vector<double> latency;
  WallTimer wall;
  for (const StormRequest& req : hit_storm.requests) {  // measured, all hits
    WallTimer timer;
    frontend.submit(serve::storm_request(hit_storm, req, presets)).get();
    latency.push_back(timer.seconds());
  }
  const double hit_wall = wall.seconds();
  const auto tree_builds =
      static_cast<double>(ClusterTree::build_count() - trees_before);
  const auto moment_builds =
      static_cast<double>(ClusterMoments::build_count() - moments_before);

  std::sort(latency.begin(), latency.end());
  const double hit_p50 = latency[latency.size() / 2] * 1e3;
  const double hit_p99 =
      latency[std::min(latency.size() - 1,
                       static_cast<std::size_t>(
                           0.99 * static_cast<double>(latency.size())))] *
      1e3;
  std::printf("\ncache-hit storm (post-warmup): p50 %.3f ms, p99 %.3f ms, "
              "%.1f req/s; %g tree builds, %g moment builds\n",
              hit_p50, hit_p99,
              static_cast<double>(hit_storm.requests.size()) / hit_wall,
              tree_builds, moment_builds);
  report.metric("hitstorm_p50_ms", hit_p50);
  report.metric("hitstorm_p99_ms", hit_p99);
  report.metric("hitstorm_throughput_rps",
                static_cast<double>(hit_storm.requests.size()) / hit_wall);
  report.metric("hitstorm_tree_builds_after_warmup", tree_builds);
  report.metric("hitstorm_moment_builds_after_warmup", moment_builds);
  report.metric("hitstorm_cache_hits", static_cast<double>(cache.stats().hits));
  report.metric("hitstorm_cache_misses",
                static_cast<double>(cache.stats().misses));

  // ---- Overload: offered load far above capacity -------------------------
  // One worker serves a burst of closed-loop clients several times deeper
  // than the queue budget, over a pre-warmed cache. The hardened frontend
  // (bounded queue + kShedOldest + per-request deadline + graceful
  // degradation) must keep resolution p99 near the deadline — sheds and
  // expiries resolve fast, successes execute from a bounded queue — while
  // the unhardened configuration (kBlock, no deadline, no degradation)
  // makes every request wait out the full backlog.
  StormSpec overload_spec = spec;
  overload_spec.num_requests = env_size("BLTC_SERVE_OVERLOAD_REQUESTS", 192);
  overload_spec.shared_fraction = 1.0;  // stable per-request cost
  overload_spec.translate_fraction = 0.0;
  const RequestStorm overload_storm = request_storm(overload_spec, 99);
  const std::size_t overload_clients = 32;
  const double deadline_ms = 50.0;

  serve::ServeOptions hardened;
  hardened.workers = 1;
  hardened.max_batch = 4;
  hardened.max_delay_ms = 0.2;
  hardened.max_queue_requests = 8;
  hardened.shed_policy = serve::ShedPolicy::kShedOldest;
  hardened.max_degrade_tier = 2;
  hardened.overload_factor = 1.0;
  hardened.ewma_alpha = 0.5;

  serve::ServeOptions unhardened = hardened;
  unhardened.shed_policy = serve::ShedPolicy::kBlock;
  unhardened.max_degrade_tier = 0;

  const StormRun hard = run_storm(overload_storm, presets, overload_clients,
                                  hardened, deadline_ms, /*warmup=*/true);
  const StormRun soft = run_storm(overload_storm, presets, overload_clients,
                                  unhardened, /*deadline_ms=*/0.0,
                                  /*warmup=*/true);

  const auto rate = [&](std::size_t n) {
    return static_cast<double>(n) /
           static_cast<double>(overload_storm.requests.size());
  };
  std::printf("\noverload (%zu clients, queue<=8, 1 worker, %zu requests):\n",
              overload_clients, overload_storm.requests.size());
  std::printf("  hardened   p50 %8.3f ms  p99 %8.3f ms  ok %zu  shed %zu  "
              "deadline %zu  degraded %zu (deadline %.0f ms)\n",
              hard.p50_ms, hard.p99_ms, hard.ok, hard.shed, hard.expired,
              hard.frontend.degraded, deadline_ms);
  std::printf("  unhardened p50 %8.3f ms  p99 %8.3f ms  ok %zu "
              "(kBlock, no deadline, no degradation)\n",
              soft.p50_ms, soft.p99_ms, soft.ok);

  report.metric("overload_deadline_ms", deadline_ms);
  report.metric("overload_hardened_p50_ms", hard.p50_ms);
  report.metric("overload_hardened_p99_ms", hard.p99_ms);
  report.metric("overload_hardened_shed_rate", rate(hard.shed));
  report.metric("overload_hardened_deadline_rate", rate(hard.expired));
  report.metric("overload_hardened_ok", static_cast<double>(hard.ok));
  report.metric("overload_hardened_degraded",
                static_cast<double>(hard.frontend.degraded));
  report.metric("overload_hardened_throughput_rps", hard.throughput);
  report.metric("overload_unhardened_p50_ms", soft.p50_ms);
  report.metric("overload_unhardened_p99_ms", soft.p99_ms);
  report.metric("overload_unhardened_ok", static_cast<double>(soft.ok));
  report.metric("overload_unhardened_throughput_rps", soft.throughput);

  const std::string path =
      bench::json_output_path(argc, argv, "BENCH_serving.json");
  if (!path.empty()) report.write(path);
  return 0;
}
