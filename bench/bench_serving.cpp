// Serving-layer bench: a seeded multi-tenant request storm (mixed open /
// periodic / dual-traversal requests over shared and unique clouds) driven
// through the PlanCache + batching ServeFrontend by closed-loop clients.
// Reports per-request latency percentiles and throughput at 1, 4, and 16
// concurrent clients, plus a cache-hit storm that must show *zero* tree
// builds and *zero* moment builds after warmup — the amortization claim of
// the serving layer, measured with the same structural counters the tests
// assert on. Results go to BENCH_serving.json (override with --json).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/moments.hpp"
#include "core/tree.hpp"
#include "serve/frontend.hpp"
#include "serve/plan_cache.hpp"
#include "serve/storm.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

using namespace bltc;

namespace {

struct StormRun {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double throughput = 0.0;  ///< requests per second
  double wall_seconds = 0.0;
  serve::CacheStats cache;
  serve::FrontendStats frontend;
};

/// Drive every storm request through a fresh cache + frontend with
/// `clients` closed-loop client threads.
StormRun run_storm(const RequestStorm& storm,
                   const serve::StormParams& presets, std::size_t clients,
                   std::size_t max_batch, double max_delay_ms,
                   std::size_t workers) {
  serve::PlanCache cache;
  serve::ServeOptions options;
  options.max_batch = max_batch;
  options.max_delay_ms = max_delay_ms;
  options.workers = workers;
  serve::ServeFrontend frontend(cache, options);

  std::vector<double> latency(storm.requests.size(), 0.0);
  std::atomic<std::size_t> cursor{0};
  WallTimer wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (;;) {
          const std::size_t i = cursor.fetch_add(1);
          if (i >= storm.requests.size()) return;
          const serve::ServeRequest request =
              serve::storm_request(storm, storm.requests[i], presets);
          WallTimer timer;
          frontend.submit(request).get();
          latency[i] = timer.seconds();
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  StormRun run;
  run.wall_seconds = wall.seconds();
  std::sort(latency.begin(), latency.end());
  const auto pct = [&](double p) {
    const std::size_t idx = std::min(
        latency.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(latency.size())));
    return latency[idx] * 1e3;
  };
  run.p50_ms = pct(0.50);
  run.p99_ms = pct(0.99);
  run.throughput =
      static_cast<double>(storm.requests.size()) / run.wall_seconds;
  run.cache = cache.stats();
  run.frontend = frontend.stats();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Multi-tenant serving — request storms through PlanCache + frontend",
      "BLTC_SERVE_REQUESTS (default 48), BLTC_SERVE_SHARED_N (default "
      "2048), BLTC_SERVE_SMALL_N (default 256)");

  StormSpec spec;
  spec.num_requests = env_size("BLTC_SERVE_REQUESTS", 48);
  spec.num_shared = 3;
  spec.shared_size = env_size("BLTC_SERVE_SHARED_N", 2048);
  spec.small_size = env_size("BLTC_SERVE_SMALL_N", 256);
  const RequestStorm storm = request_storm(spec, 20260809);
  const serve::StormParams presets = serve::default_storm_params(storm.box);

  bench::JsonReport report("bench_serving");
  report.note("requests", std::to_string(storm.requests.size()));
  report.note("clouds", std::to_string(storm.clouds.size()));
  report.note("shared_size", std::to_string(spec.shared_size));
  report.note("small_size", std::to_string(spec.small_size));
  report.note("mix", "open+periodic+dual, yukawa for periodic");

  // ---- Mixed storm at 1 / 4 / 16 concurrent clients ----------------------
  bench::Table table({"clients", "p50 ms", "p99 ms", "req/s", "hits",
                      "misses", "engine calls", "fused", "max group"});
  for (const std::size_t clients : {std::size_t(1), std::size_t(4),
                                    std::size_t(16)}) {
    const StormRun run =
        run_storm(storm, presets, clients, /*max_batch=*/16,
                  /*max_delay_ms=*/0.5, /*workers=*/2);
    table.add_row({std::to_string(clients), bench::Table::num(run.p50_ms),
                   bench::Table::num(run.p99_ms),
                   bench::Table::num(run.throughput, 1),
                   std::to_string(run.cache.hits),
                   std::to_string(run.cache.misses),
                   std::to_string(run.frontend.executions),
                   std::to_string(run.frontend.fused_requests),
                   std::to_string(run.frontend.max_group)});
    const std::string prefix = "clients" + std::to_string(clients) + "_";
    report.metric(prefix + "p50_ms", run.p50_ms);
    report.metric(prefix + "p99_ms", run.p99_ms);
    report.metric(prefix + "throughput_rps", run.throughput);
    report.metric(prefix + "wall_seconds", run.wall_seconds);
    report.metric(prefix + "cache_hits",
                  static_cast<double>(run.cache.hits));
    report.metric(prefix + "cache_misses",
                  static_cast<double>(run.cache.misses));
    report.metric(prefix + "engine_calls",
                  static_cast<double>(run.frontend.executions));
    report.metric(prefix + "fused_requests",
                  static_cast<double>(run.frontend.fused_requests));
  }
  table.print();

  // ---- Cache-hit storm: every request revisits a shared cloud ------------
  // After one warmup pass the cache holds every plan; the measured pass
  // must build zero trees and zero moments.
  StormSpec hit_spec = spec;
  hit_spec.shared_fraction = 1.0;
  hit_spec.translate_fraction = 0.0;
  const RequestStorm hit_storm = request_storm(hit_spec, 77);

  serve::PlanCache cache;
  serve::ServeOptions options;
  options.max_batch = 16;
  options.max_delay_ms = 0.5;
  options.workers = 2;
  serve::ServeFrontend frontend(cache, options);
  for (const StormRequest& req : hit_storm.requests) {  // warmup
    frontend.submit(serve::storm_request(hit_storm, req, presets)).get();
  }

  const std::size_t trees_before = ClusterTree::build_count();
  const std::size_t moments_before = ClusterMoments::build_count();
  std::vector<double> latency;
  WallTimer wall;
  for (const StormRequest& req : hit_storm.requests) {  // measured, all hits
    WallTimer timer;
    frontend.submit(serve::storm_request(hit_storm, req, presets)).get();
    latency.push_back(timer.seconds());
  }
  const double hit_wall = wall.seconds();
  const auto tree_builds =
      static_cast<double>(ClusterTree::build_count() - trees_before);
  const auto moment_builds =
      static_cast<double>(ClusterMoments::build_count() - moments_before);

  std::sort(latency.begin(), latency.end());
  const double hit_p50 = latency[latency.size() / 2] * 1e3;
  const double hit_p99 =
      latency[std::min(latency.size() - 1,
                       static_cast<std::size_t>(
                           0.99 * static_cast<double>(latency.size())))] *
      1e3;
  std::printf("\ncache-hit storm (post-warmup): p50 %.3f ms, p99 %.3f ms, "
              "%.1f req/s; %g tree builds, %g moment builds\n",
              hit_p50, hit_p99,
              static_cast<double>(hit_storm.requests.size()) / hit_wall,
              tree_builds, moment_builds);
  report.metric("hitstorm_p50_ms", hit_p50);
  report.metric("hitstorm_p99_ms", hit_p99);
  report.metric("hitstorm_throughput_rps",
                static_cast<double>(hit_storm.requests.size()) / hit_wall);
  report.metric("hitstorm_tree_builds_after_warmup", tree_builds);
  report.metric("hitstorm_moment_builds_after_warmup", moment_builds);
  report.metric("hitstorm_cache_hits", static_cast<double>(cache.stats().hits));
  report.metric("hitstorm_cache_misses",
                static_cast<double>(cache.stats().misses));

  const std::string path =
      bench::json_output_path(argc, argv, "BENCH_serving.json");
  if (!path.empty()) report.write(path);
  return 0;
}
