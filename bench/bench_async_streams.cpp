// §3.2 text claim: "asynchronous streams reduce the computation time in a
// typical case by about 25%" (1M-particle test case). This ablation runs
// the same solve with async streams on and off and reports the modeled
// compute-phase reduction.
#include <cstdio>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "util/env.hpp"

using namespace bltc;

int main() {
  bench::banner(
      "§3.2 ablation — asynchronous streams (paper: ~25% compute reduction)",
      "BLTC_ASYNC_N (default 15000), BLTC_ASYNC_BATCH (default 2000)");

  const std::size_t n = env_size("BLTC_ASYNC_N", 15000);
  const std::size_t batch = env_size("BLTC_ASYNC_BATCH", 2000);
  const Cloud cloud = uniform_cube(n, 777);

  bench::Table table({"kernel", "theta", "n", "compute_sync[s]",
                      "compute_async[s]", "reduction", "launches"});

  for (const KernelSpec kernel :
       {KernelSpec::coulomb(), KernelSpec::yukawa(0.5)}) {
    for (const double theta : {0.7, 0.8}) {
      TreecodeParams params;
      params.theta = theta;
      params.degree = 8;
      params.max_leaf = batch;
      params.max_batch = batch;

      SolverConfig sync_config;
      sync_config.kernel = kernel;
      sync_config.params = params;
      sync_config.backend = Backend::kGpuSim;
      sync_config.gpu.async_streams = false;
      SolverConfig async_config = sync_config;
      async_config.gpu.async_streams = true;

      RunStats sync_stats, async_stats;
      Solver sync_solver(sync_config);
      sync_solver.set_sources(cloud);
      sync_solver.evaluate(cloud, &sync_stats);
      Solver async_solver(async_config);
      async_solver.set_sources(cloud);
      async_solver.evaluate(cloud, &async_stats);

      const double reduction = 100.0 * (sync_stats.modeled.compute -
                                        async_stats.modeled.compute) /
                               sync_stats.modeled.compute;
      table.add_row({kernel.name(), bench::Table::num(theta, 1), "8",
                     bench::Table::num(sync_stats.modeled.compute, 4),
                     bench::Table::num(async_stats.modeled.compute, 4),
                     bench::Table::num(reduction, 1) + "%",
                     std::to_string(async_stats.gpu_launches)});
    }
  }
  table.print();
  std::printf("\nPaper: asynchronous streams save ~25%% of compute time for "
              "the 1M test case.\n");
  return 0;
}
