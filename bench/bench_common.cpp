#include "bench_common.hpp"

#include <cstdio>
#include <cstring>

#include "core/direct_sum.hpp"
#include "util/stats.hpp"

namespace bltc::bench {

double sampled_error(const Cloud& cloud, const std::vector<double>& phi,
                     const KernelSpec& kernel, std::size_t nsamples) {
  return sampled_error2(cloud, cloud, phi, kernel, nsamples);
}

double sampled_error2(const Cloud& targets, const Cloud& sources,
                      const std::vector<double>& phi, const KernelSpec& kernel,
                      std::size_t nsamples) {
  const auto sample = sample_indices(targets.size(), nsamples);
  const auto ref = direct_sum_sampled(targets, sample, sources, kernel);
  std::vector<double> approx(sample.size());
  for (std::size_t s = 0; s < sample.size(); ++s) approx[s] = phi[sample[s]];
  return relative_l2_error(ref, approx);
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

void Table::print() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  for (std::size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

void banner(const std::string& title, const std::string& knobs) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!knobs.empty()) std::printf("env knobs: %s\n", knobs.c_str());
  std::printf("================================================================\n");
}

JsonReport::JsonReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void JsonReport::metric(const std::string& name, double value) {
  metrics_.emplace_back(name, value);
}

void JsonReport::note(const std::string& name, const std::string& value) {
  notes_.emplace_back(name, value);
}

namespace {

/// Escape the characters JSON strings cannot hold verbatim; the bench
/// metric names are plain identifiers, so this only has to be correct, not
/// complete (control characters other than \t\n\r are not expected).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

bool JsonReport::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": {\n",
               json_escape(bench_name_).c_str());
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.17g%s\n",
                 json_escape(metrics_[i].first).c_str(), metrics_[i].second,
                 i + 1 < metrics_.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"meta\": {\n");
  for (std::size_t i = 0; i < notes_.size(); ++i) {
    std::fprintf(f, "    \"%s\": \"%s\"%s\n",
                 json_escape(notes_[i].first).c_str(),
                 json_escape(notes_[i].second).c_str(),
                 i + 1 < notes_.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("json report: %s\n", path.c_str());
  return true;
}

std::string json_output_path(int argc, char** argv,
                             const std::string& fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        // A bare trailing --json must not silently fall back to the
        // tracked default file (and possibly overwrite it).
        std::fprintf(stderr, "--json requires a path (or '-' to disable); "
                             "no report written\n");
        return {};
      }
      const std::string path = argv[i + 1];
      return path == "-" ? std::string{} : path;
    }
  }
  return fallback;
}

}  // namespace bltc::bench
