#include "bench_common.hpp"

#include <cstdio>

#include "core/direct_sum.hpp"
#include "util/stats.hpp"

namespace bltc::bench {

double sampled_error(const Cloud& cloud, const std::vector<double>& phi,
                     const KernelSpec& kernel, std::size_t nsamples) {
  return sampled_error2(cloud, cloud, phi, kernel, nsamples);
}

double sampled_error2(const Cloud& targets, const Cloud& sources,
                      const std::vector<double>& phi, const KernelSpec& kernel,
                      std::size_t nsamples) {
  const auto sample = sample_indices(targets.size(), nsamples);
  const auto ref = direct_sum_sampled(targets, sample, sources, kernel);
  std::vector<double> approx(sample.size());
  for (std::size_t s = 0; s < sample.size(); ++s) approx[s] = phi[sample[s]];
  return relative_l2_error(ref, approx);
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

void Table::print() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  for (std::size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

void banner(const std::string& title, const std::string& knobs) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!knobs.empty()) std::printf("env knobs: %s\n", knobs.c_str());
  std::printf("================================================================\n");
}

}  // namespace bltc::bench
