// Figure 2 reproduction: recursive coordinate bisection of the unit square
// into (a) 4 and (b) 6 partitions, y bisected first. The paper's claim: the
// area owned by each process is 1/4 (a) and 1/6 (b).
#include <cstdio>

#include "bench_common.hpp"
#include "partition/rcb.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"
#include "util/workloads.hpp"

using namespace bltc;

namespace {

void run_panel(const char* label, std::size_t nparts, std::size_t npoints) {
  Cloud c = uniform_cube(npoints, 2020, 0.0, 1.0);
  for (double& z : c.z) z = 0.0;  // 2D point set on the unit square
  Box3 domain;
  domain.lo = {0.0, 0.0, 0.0};
  domain.hi = {1.0, 1.0, 0.0};

  WallTimer timer;
  const RcbResult r = rcb_partition(c.x, c.y, c.z, nparts, domain,
                                    RcbAxisPolicy::kCycleYXZ);
  const double seconds = timer.seconds();

  std::printf("\nFig. 2%s: unit square, %zu partitions (%zu points, %.3f s)\n",
              label, nparts, npoints, seconds);
  bench::Table table({"part", "count", "x-range", "y-range", "area",
                      "paper(1/p)"});
  for (std::size_t p = 0; p < nparts; ++p) {
    const Box3& b = r.part_box[p];
    const double area = (b.hi[0] - b.lo[0]) * (b.hi[1] - b.lo[1]);
    char xr[64], yr[64];
    std::snprintf(xr, sizeof(xr), "[%.3f, %.3f]", b.lo[0], b.hi[0]);
    std::snprintf(yr, sizeof(yr), "[%.3f, %.3f]", b.lo[1], b.hi[1]);
    table.add_row({std::to_string(p), std::to_string(r.part_count[p]), xr, yr,
                   bench::Table::num(area, 4),
                   bench::Table::num(1.0 / static_cast<double>(nparts), 4)});
  }
  table.print();
}

}  // namespace

int main() {
  bench::banner(
      "Fig. 2 — RCB domain decomposition of the unit square (4 and 6 parts)",
      "BLTC_FIG2_N (default 100000)");
  const std::size_t n = env_size("BLTC_FIG2_N", 100000);
  run_panel("a", 4, n);
  run_panel("b", 6, n);
  std::printf(
      "\nExpected (paper): every part's area is 1/4 (panel a) and 1/6 "
      "(panel b);\nthe first bisection is in y at 0.5, later cuts depend on "
      "the rank split.\n");
  return 0;
}
