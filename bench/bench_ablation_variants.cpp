// §5 future-work ablation: particle-cluster (the paper's BLTC) vs
// cluster-particle vs cluster-cluster barycentric treecodes, on uniform and
// Plummer distributions. Reports error, kernel evaluations, interaction
// mix, and host time — the work comparison behind references [30]-[32].
#include <cstdio>

#include "bench_common.hpp"
#include "core/variants.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

using namespace bltc;

namespace {

const char* variant_name(TreecodeVariant v) {
  switch (v) {
    case TreecodeVariant::kParticleCluster:
      return "particle-cluster";
    case TreecodeVariant::kClusterParticle:
      return "cluster-particle";
    default:
      return "cluster-cluster";
  }
}

void run_panel(const char* label, const Cloud& cloud) {
  std::printf("\n--- %s, N = %zu ---\n", label, cloud.size());
  bench::Table table({"variant", "error", "kernel_evals", "pc", "cp", "cc",
                      "direct", "host[s]"});
  for (const TreecodeVariant v :
       {TreecodeVariant::kParticleCluster, TreecodeVariant::kClusterParticle,
        TreecodeVariant::kClusterCluster}) {
    TreecodeParams params;
    params.theta = 0.7;
    params.degree = 6;
    params.max_leaf = 500;
    params.max_batch = 500;

    VariantStats stats;
    WallTimer timer;
    const auto phi = compute_potential_variant(cloud, cloud,
                                               KernelSpec::coulomb(), params,
                                               v, &stats);
    const double host_seconds = timer.seconds();
    const double err =
        bench::sampled_error(cloud, phi, KernelSpec::coulomb(), 500);

    table.add_row({variant_name(v), bench::Table::sci(err),
                   bench::Table::sci(stats.kernel_evals),
                   std::to_string(stats.pc_interactions),
                   std::to_string(stats.cp_interactions),
                   std::to_string(stats.cc_interactions),
                   std::to_string(stats.direct_interactions),
                   bench::Table::num(host_seconds, 2)});
  }
  table.print();
}

}  // namespace

int main() {
  bench::banner(
      "§5 ablation — treecode variants (PC vs CP vs CC)",
      "BLTC_VARIANTS_N (default 30000)");
  const std::size_t n = env_size("BLTC_VARIANTS_N", 30000);
  run_panel("uniform cube", uniform_cube(n, 123));
  run_panel("Plummer sphere", plummer_sphere(n, 456));
  std::printf(
      "\nExpected shape: cluster-cluster needs the fewest kernel evaluations "
      "(grid-grid\ninteractions compress both sides); all variants deliver "
      "comparable accuracy.\n");
  return 0;
}
